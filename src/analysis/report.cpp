#include "hcep/analysis/report.hpp"

#include <sstream>

#include "hcep/analysis/knightshift.hpp"
#include "hcep/cluster/simulator.hpp"
#include "hcep/config/budget.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/obs/run_report.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/table.hpp"

namespace hcep::analysis {

namespace {

/// Traces one EP cluster run and renders the analysis layer's view of it
/// (profile, queue decomposition, windowed energy attribution).
void render_observability_section(const core::PaperStudy& study,
                                  std::ostringstream& os) {
  os << "## Observability — traced DES run (EP, 4xA9 + 2xK10)\n\n";

  obs::Observer observer;
  cluster::SimOptions sim_options;
  sim_options.utilization = 0.6;
  sim_options.min_jobs = 200;
  sim_options.seed = 20260807;
  const model::TimeEnergyModel m(model::make_a9_k10_cluster(4, 2),
                                 study.workload("EP"));
  cluster::SimResult result;
  {
    obs::ScopedObserver scope(observer);
    result = cluster::simulate(m, sim_options);
  }

  const obs::Trace trace = obs::Trace::from(observer.tracer);
  if (trace.events.empty()) {
    os << "*(no trace events — observability instrumentation is compiled "
          "out; rebuild with -DHCEP_OBS=ON)*\n\n";
    return;
  }

  const obs::MetricsSnapshot snapshot = observer.metrics.snapshot();
  const double interval = result.window.value() / 8.0;
  const obs::RunReport report = obs::make_run_report(
      trace, "EP traced run", interval, &snapshot);

  os << "Trace: " << report.profile.events << " events ("
     << report.profile.dropped << " dropped), horizon "
     << fmt(report.profile.horizon_s, 2) << " s, critical path "
     << fmt(report.profile.critical_path_s, 2) << " s, idle "
     << fmt(report.profile.idle_s, 2) << " s.\n\n";

  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& s : report.profile.spans) {
      rows.push_back({s.category + ":" + s.name, std::to_string(s.count),
                      fmt(s.wall_s, 2), fmt(s.self_s, 2),
                      fmt(s.wait_s, 2)});
    }
    os << markdown_table(
              {"span", "count", "wall [s]", "self [s]", "wait [s]"}, rows)
       << "\n";
  }

  const auto& q = report.profile.queue;
  os << "Queue decomposition over " << q.jobs
     << " jobs: mean wait " << fmt(q.mean_wait_s * 1e3, 2)
     << " ms vs mean service " << fmt(q.mean_service_s * 1e3, 2)
     << " ms (p95 " << fmt(q.p95_wait_s * 1e3, 2) << " / "
     << fmt(q.p95_service_s * 1e3, 2) << " ms).\n\n";

  // Energy attribution cross-check: windowed rollup of the cluster power
  // track over the observation window must re-integrate to the exact
  // simulator energy.
  const obs::SeriesRollup rollup = obs::rollup_counter(
      trace, "cluster_W", interval, result.window.value());
  os << "Windowed energy attribution (`cluster_W`, " << rollup.windows.size()
     << " windows): rollup total " << fmt(rollup.total_energy_j.value(), 3)
     << " J vs exact " << fmt(result.energy_exact.value(), 3) << " J.\n\n";
}

/// Drives the standard heterogeneous cluster with a mixed Poisson request
/// stream (EP batch + memcached interactive) through admission control
/// and renders the ledger, exact latency order statistics and per-class
/// SLO accounting.
void render_traffic_section(const core::PaperStudy& study,
                            std::ostringstream& os) {
  os << "## Traffic — request-level simulation (Poisson, 4xA9 + 2xK10)\n\n";

  const auto cluster = model::make_a9_k10_cluster(4, 2);
  std::vector<traffic::TrafficClass> classes;
  classes.push_back(
      traffic::TrafficClass{study.workload("EP"), 3.0, traffic::SloTarget{}});
  classes.push_back(traffic::TrafficClass{study.workload("memcached"), 1.0,
                                          traffic::SloTarget{}});
  const double capacity = traffic::cluster_capacity_per_s(cluster, classes);
  // Latency objective: p95 sojourn within 20x the mean service quantum.
  const Seconds slo_latency{20.0 / capacity};
  for (auto& c : classes) c.slo = traffic::SloTarget{slo_latency, 0.95};

  traffic::TrafficOptions options;
  options.requests = 4000;
  options.policy = cluster::DispatchPolicy::kJoinShortestQueue;
  options.admission.bucket_rate_per_s = 0.9 * capacity;
  options.admission.bucket_burst = 50.0;
  options.admission.max_queue_depth = 64;
  options.retry.max_attempts = 3;
  options.retry.base_backoff = Seconds{2.0 / capacity};
  options.seed = 20260807;
  const auto r = traffic::simulate_traffic(
      cluster, classes, *traffic::make_poisson(0.7 * capacity), options);

  os << "Offered " << r.offered << " requests at utilization 0.70 ("
     << fmt(0.7 * capacity, 1) << " req/s against capacity "
     << fmt(capacity, 1) << " req/s), policy join-shortest-queue, token "
     << "bucket at 90% capacity, queue-depth cap 64, up to 3 attempts.\n\n";
  os << "Ledger: " << r.admitted << " admitted, " << r.shed_bucket
     << " shed by the bucket, " << r.shed_queue << " shed on queue depth, "
     << r.retries << " retries, " << r.completed << " completed, "
     << r.failed << " failed. Energy " << fmt(r.energy.value(), 1)
     << " J over " << fmt(r.makespan.value(), 2) << " s ("
     << fmt(r.energy_per_request.value(), 2) << " J/request).\n\n";

  {
    const auto latency_row = [](const std::string& label,
                                const traffic::LatencySummary& s) {
      return std::vector<std::string>{label, fmt(s.mean.value() * 1e3, 2),
                                      fmt(s.p50.value() * 1e3, 2),
                                      fmt(s.p95.value() * 1e3, 2),
                                      fmt(s.p99.value() * 1e3, 2),
                                      fmt(s.max.value() * 1e3, 2)};
    };
    os << markdown_table(
              {"latency", "mean [ms]", "p50 [ms]", "p95 [ms]", "p99 [ms]",
               "max [ms]"},
              {latency_row("queue wait", r.wait),
               latency_row("service", r.service),
               latency_row("sojourn", r.sojourn)})
       << "\n";
  }

  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& c : r.classes) {
      rows.push_back({c.name, std::to_string(c.offered),
                      std::to_string(c.completed),
                      std::to_string(c.slo_violations),
                      fmt(100.0 * c.violation_fraction(), 1),
                      c.slo_met() ? "yes" : "no",
                      fmt(c.energy_per_request.value(), 2)});
    }
    os << markdown_table({"class", "offered", "completed", "violations",
                          "viol %", "p95 SLO met", "J/request"},
                         rows)
       << "\n";
  }

  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& n : r.nodes) {
      rows.push_back({n.node_name, std::to_string(n.jobs_served),
                      fmt(100.0 * n.busy_fraction, 1)});
    }
    os << markdown_table({"node type", "requests", "busy %"}, rows) << "\n";
  }
}

}  // namespace

std::string markdown_table(const std::vector<std::string>& header,
                           const std::vector<std::vector<std::string>>& rows) {
  require(!header.empty(), "markdown_table: empty header");
  std::ostringstream os;
  os << "|";
  for (const auto& h : header) os << " " << h << " |";
  os << "\n|";
  for (std::size_t i = 0; i < header.size(); ++i) os << "---|";
  os << "\n";
  for (const auto& row : rows) {
    require(row.size() == header.size(), "markdown_table: row width mismatch");
    os << "|";
    for (const auto& cell : row) os << " " << cell << " |";
    os << "\n";
  }
  return os.str();
}

std::string render_report(const core::PaperStudy& study,
                          const ReportOptions& options) {
  std::ostringstream os;
  os << "# hcep reproduction report\n\n"
     << "Generated by `hcep::analysis::render_report`. Paper: Ramapantulu, "
        "Loghin, Teo — *On Energy Proportionality and Time-Energy "
        "Performance of Heterogeneous Clusters*, IEEE CLUSTER 2016.\n\n";

  // ----------------------------------------------------------- Table 4
  os << "## Table 4 — model validation\n\n";
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& r : study.table4()) {
      rows.push_back({r.domain, r.program, fmt(r.time_error_percent, 1),
                      fmt(r.energy_error_percent, 1)});
    }
    os << markdown_table({"Domain", "Program", "time err %", "energy err %"},
                         rows)
       << "\n";
  }

  // ------------------------------------------------------ Tables 6 + 7
  os << "## Tables 6/7 — single-node PPR and proportionality\n\n";
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& a : study.single_node_analyses()) {
      rows.push_back({a.program, a.node,
                      a.ppr_peak >= 100 ? fmt_grouped(a.ppr_peak)
                                        : fmt(a.ppr_peak, 2),
                      fmt(a.report.dpr, 2), fmt(a.report.ipr, 2),
                      fmt(a.report.epm, 2)});
    }
    os << markdown_table({"Program", "Node", "PPR", "DPR", "IPR", "EPM"},
                         rows)
       << "\n";
  }

  // ------------------------------------------------------------ Table 8
  os << "## Table 8 — cluster-wide proportionality (1 kW mixes)\n\n";
  for (const auto& program : workload::program_names()) {
    os << "### " << program << "\n\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto& m : study.budget_mix_analyses(program)) {
      rows.push_back({m.label, fmt(m.report.dpr, 2), fmt(m.report.ipr, 2),
                      fmt(m.report.epm, 2), fmt(m.idle_power.value(), 1),
                      fmt(m.peak_power.value(), 1)});
    }
    os << markdown_table(
              {"Mix", "DPR", "IPR", "EPM", "idle [W]", "peak [W]"}, rows)
       << "\n";
  }

  // ------------------------------------------------- Figures 9/10 + 11/12
  for (const auto* program : {"EP", "x264"}) {
    os << "## Figures 9-12 — Pareto mixes and response times (" << program
       << ")\n\n";
    const auto pareto = study.pareto_study(program, options.include_frontier);
    const auto response = study.response_study(program,
                                               options.cross_check_des);
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < pareto.mixes.size(); ++i) {
      const auto& pm = pareto.mixes[i];
      const auto& rm = response.mixes[i];
      rows.push_back(
          {pm.mix.label(),
           pm.crossover_utilization > 1.0
               ? std::string("never")
               : fmt(pm.crossover_utilization * 100, 0) + "%",
           pm.sublinear_at_half ? "yes" : "no",
           rm.meets_deadline ? "yes" : "NO",
           fmt(rm.service_time.value() * 1e3, 2),
           fmt(rm.points.back().p95_analytic.value() * 1e3, 1)});
    }
    os << "deadline: " << fmt(response.deadline.value() * 1e3, 1)
       << " ms; reference peak " << fmt(pareto.reference_peak.value(), 1)
       << " W";
    if (options.include_frontier)
      os << "; Pareto frontier size " << pareto.frontier.size();
    os << "\n\n"
       << markdown_table({"mix", "sub-linear from", "sub@50%",
                          "meets deadline", "service [ms]",
                          "p95@95% [ms]"},
                         rows)
       << "\n";
  }

  // ---------------------------------------------------------- extension
  os << "## Extension — KnightShift composites\n\n";
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& w : study.workloads()) {
      const auto ks = analyze_knightshift(w);
      rows.push_back({w.name, fmt(ks.switch_threshold * 100, 1) + "%",
                      fmt(ks.report.ipr, 2), fmt(ks.report.epm, 2),
                      fmt(ks.report.ldr_literal, 2)});
    }
    os << markdown_table(
              {"Program", "knight covers", "IPR", "EPM", "LDR(literal)"},
              rows)
       << "\n";
  }

  // -------------------------------------------------------- observability
  if (options.include_observability) render_observability_section(study, os);
  if (options.include_traffic) render_traffic_section(study, os);
  return os.str();
}

}  // namespace hcep::analysis
