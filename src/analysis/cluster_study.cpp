#include "hcep/analysis/cluster_study.hpp"

namespace hcep::analysis {

std::vector<MixAnalysis> analyze_mixes(
    const std::vector<model::ClusterSpec>& mixes,
    const workload::Workload& workload, model::CurveFamily family,
    double curvature) {
  std::vector<MixAnalysis> out;
  out.reserve(mixes.size());
  for (const auto& mix : mixes) {
    model::TimeEnergyModel m(mix, workload);
    MixAnalysis a{
        .label = mix.label(),
        .curve = m.power_curve(family, curvature),
        .report = {},
        .peak_throughput = m.peak_throughput(),
        .idle_power = m.idle_power(),
        .peak_power = m.busy_power(),
        .nameplate = mix.nameplate_power(),
    };
    a.report = metrics::analyze(a.curve);
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace hcep::analysis
