#include "hcep/analysis/response_study.hpp"

#include "hcep/cluster/simulator.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/queueing/md1.hpp"
#include "hcep/util/error.hpp"

namespace hcep::analysis {

using namespace hcep::literals;

Seconds default_deadline(const std::string& program) {
  // Sized against the weakest paper mix (25 A9 : 5 K10) at full tilt: the
  // wimpy-favoured programs (EP, memcached, blackscholes, Julius) fit
  // within the deadline on every mix; the brawny-favoured ones (x264,
  // RSA-2048) miss it once enough K10 nodes are removed — exactly the
  // dichotomy of Section III-E.
  if (program == "EP") return 25.0_ms;
  if (program == "memcached") return 3.5_ms;
  if (program == "x264") return 0.7_s;
  if (program == "blackscholes") return 65.0_ms;
  if (program == "Julius") return 30.0_ms;
  if (program == "RSA-2048") return 2.5_ms;
  throw PreconditionError("default_deadline: unknown program '" + program +
                          "'");
}

ResponseStudyResult run_response_study(const workload::Workload& workload,
                                       const ResponseStudyOptions& options) {
  std::vector<MixCounts> mixes =
      options.mixes.empty() ? paper_pareto_mixes() : options.mixes;
  std::vector<double> grid = options.utilization_percents;
  if (grid.empty()) grid = {20, 30, 40, 50, 60, 70, 80, 90, 95};
  const Seconds deadline = options.deadline.value() > 0.0
                               ? options.deadline
                               : default_deadline(workload.name);

  ResponseStudyResult out;
  out.deadline = deadline;

  for (const auto& mix : mixes) {
    MixResponse mr;
    mr.mix = mix;

    auto point = best_operating_point(mix, workload, deadline);
    mr.meets_deadline = point.has_value();
    if (!point) point = fastest_operating_point(mix, workload);
    mr.service_time = point->time;
    mr.job_energy = point->energy;

    for (double up : grid) {
      require(up > 0.0 && up < 100.0,
              "run_response_study: utilization % outside (0, 100)");
      const double u = up / 100.0;
      const queueing::MD1 q =
          queueing::MD1::from_utilization(mr.service_time, u);

      ResponsePoint pt;
      pt.utilization_percent = up;
      pt.p95_analytic = q.response_percentile(95.0);

      if (options.cross_check_des) {
        model::TimeEnergyModel m(point->config, workload);
        cluster::SimOptions so;
        so.utilization = u;
        so.min_jobs = 2000;
        so.seed = options.seed + static_cast<std::uint64_t>(up * 10.0);
        so.use_testbed_overheads = false;  // compare like with like
        pt.p95_simulated = cluster::simulate(m, so).p95_response;
      }
      mr.points.push_back(pt);
    }
    out.mixes.push_back(std::move(mr));
  }
  return out;
}

}  // namespace hcep::analysis
