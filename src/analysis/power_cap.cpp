#include "hcep/analysis/power_cap.hpp"

#include <algorithm>
#include <limits>

#include "hcep/hw/catalog.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/math.hpp"
#include "hcep/util/table.hpp"

namespace hcep::analysis {

namespace {

struct Point {
  double throughput = 0.0;
  Watts idle{};
  Watts busy{};
  std::string label;
};

/// Sustainable throughput of one operating point under an average-power
/// cap: duty-cycle the point so P = idle + rho (busy - idle) <= cap.
double capped_throughput(const Point& pt, Watts cap) {
  if (cap <= pt.idle) return 0.0;
  const double rho =
      std::min(1.0, (cap - pt.idle) / (pt.busy - pt.idle));
  return pt.throughput * rho;
}

std::vector<Point> enumerate_points(const MixCounts& mix,
                                    const workload::Workload& workload) {
  const hw::NodeSpec a9 = hw::cortex_a9();
  const hw::NodeSpec k10 = hw::opteron_k10();

  std::vector<Point> out;
  const unsigned a9_cores = mix.a9 > 0 ? a9.cores : 1;
  const std::size_t a9_freqs = mix.a9 > 0 ? a9.dvfs.size() : 1;
  const unsigned k10_cores = mix.k10 > 0 ? k10.cores : 1;
  const std::size_t k10_freqs = mix.k10 > 0 ? k10.dvfs.size() : 1;

  for (unsigned ca = 1; ca <= a9_cores; ++ca) {
    for (std::size_t fa = 0; fa < a9_freqs; ++fa) {
      for (unsigned ck = 1; ck <= k10_cores; ++ck) {
        for (std::size_t fk = 0; fk < k10_freqs; ++fk) {
          model::ClusterSpec cfg;
          std::string label;
          if (mix.a9 > 0) {
            cfg.groups.push_back(
                model::NodeGroup{a9, mix.a9, ca, a9.dvfs.step(fa)});
            label += "A9@" + std::to_string(ca) + "c/" +
                     fmt(a9.dvfs.step(fa).value() / 1e9, 1) + "GHz";
          }
          if (mix.k10 > 0) {
            cfg.groups.push_back(
                model::NodeGroup{k10, mix.k10, ck, k10.dvfs.step(fk)});
            if (!label.empty()) label += "+";
            label += "K10@" + std::to_string(ck) + "c/" +
                     fmt(k10.dvfs.step(fk).value() / 1e9, 1) + "GHz";
          }
          model::TimeEnergyModel m(cfg, workload);
          out.push_back(Point{.throughput = m.peak_throughput(),
                              .idle = m.idle_power(),
                              .busy = m.busy_power(),
                              .label = std::move(label)});
        }
      }
    }
  }
  return out;
}

}  // namespace

PowerCapStudyResult run_power_cap_study(const workload::Workload& workload,
                                        const PowerCapOptions& options) {
  require(options.mix.a9 + options.mix.k10 > 0,
          "run_power_cap_study: empty mix");
  const auto points = enumerate_points(options.mix, workload);
  require(!points.empty(), "run_power_cap_study: no operating points");

  const Point* race = &points.front();
  for (const auto& pt : points)
    if (pt.throughput > race->throughput) race = &pt;

  PowerCapStudyResult out;
  out.idle_power = race->idle;
  out.busy_power = race->busy;

  std::vector<Watts> caps = options.caps;
  if (caps.empty()) {
    for (double f : linspace(0.05, 1.0, 10)) {
      caps.push_back(race->idle + (race->busy - race->idle) * f);
    }
  }

  for (const Watts cap : caps) {
    PowerCapPoint p;
    p.cap = cap;
    p.race_throughput = capped_throughput(*race, cap);

    const Point* best = nullptr;
    double best_throughput = -1.0;
    for (const auto& pt : points) {
      const double x = capped_throughput(pt, cap);
      if (x > best_throughput) {
        best_throughput = x;
        best = &pt;
      }
    }
    p.paced_throughput = best_throughput;
    p.paced_label = best->label;
    p.pacing_gain =
        p.race_throughput > 0.0
            ? p.paced_throughput / p.race_throughput
            : (p.paced_throughput > 0.0
                   ? std::numeric_limits<double>::infinity()
                   : 1.0);
    out.points.push_back(std::move(p));
  }
  return out;
}

}  // namespace hcep::analysis
