#include "hcep/analysis/knightshift.hpp"

#include "hcep/hw/catalog.hpp"
#include "hcep/util/error.hpp"
#include "hcep/workload/node_ops.hpp"

namespace hcep::analysis {

KnightShiftSpec default_knightshift() {
  return KnightShiftSpec{.knight = hw::cortex_a9(),
                         .primary = hw::opteron_k10(),
                         .primary_sleep = Watts{3.0},
                         .knight_shadow = Watts{1.0}};
}

KnightShiftAnalysis analyze_knightshift(const workload::Workload& workload,
                                        const KnightShiftSpec& spec) {
  require(workload.has_node(spec.knight.name),
          "analyze_knightshift: no demand for knight '" + spec.knight.name +
              "'");
  require(workload.has_node(spec.primary.name),
          "analyze_knightshift: no demand for primary '" + spec.primary.name +
              "'");

  const auto& dk = workload.demand_for(spec.knight.name);
  const auto& dp = workload.demand_for(spec.primary.name);
  const double kappa_k = workload.power_scale_for(spec.knight.name);
  const double kappa_p = workload.power_scale_for(spec.primary.name);

  const double thr_knight = workload::unit_throughput(
      dk, spec.knight, spec.knight.cores, spec.knight.dvfs.max());
  const double thr_primary = workload::unit_throughput(
      dp, spec.primary, spec.primary.cores, spec.primary.dvfs.max());
  require(thr_primary > thr_knight,
          "analyze_knightshift: the knight must be the slower node");

  const Watts p_knight_busy =
      workload::busy_power(dk, spec.knight, spec.knight.cores,
                           spec.knight.dvfs.max(), kappa_k);
  const Watts p_primary_busy =
      workload::busy_power(dp, spec.primary, spec.primary.cores,
                           spec.primary.dvfs.max(), kappa_p);

  // Utilization is measured against the primary's capacity (the system's
  // peak throughput); the knight covers u in (0, threshold].
  const double threshold = thr_knight / thr_primary;

  // Knight-mode power at system utilization u: the knight runs at its own
  // utilization u / threshold; the primary sleeps.
  const auto knight_mode = [&](double u) {
    const double knight_u = u / threshold;
    return spec.primary_sleep + spec.knight.power.idle +
           (p_knight_busy - spec.knight.power.idle) * knight_u;
  };
  // Primary-mode power: the primary serves u of its capacity; the knight
  // keeps a small shadow draw.
  const auto primary_mode = [&](double u) {
    return spec.knight_shadow + spec.primary.power.idle +
           (p_primary_busy - spec.primary.power.idle) * u;
  };

  PiecewiseLinear samples;
  samples.add(0.0, knight_mode(0.0).value());
  samples.add(threshold, knight_mode(threshold).value());
  // Wake step: a near-vertical segment at the handover.
  const double eps = std::min(1e-6, (1.0 - threshold) / 2.0);
  samples.add(threshold + eps, primary_mode(threshold + eps).value());
  samples.add(1.0, primary_mode(1.0).value());

  KnightShiftAnalysis out{
      .curve = power::PowerCurve::sampled(std::move(samples)),
      .switch_threshold = threshold,
      .peak_throughput = thr_primary,
      .report = {},
  };
  out.report = metrics::analyze(out.curve);
  return out;
}

}  // namespace hcep::analysis
