#include "hcep/parallel/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "hcep/obs/obs.hpp"

namespace hcep {

namespace {
/// Set for the lifetime of a worker thread; lets parallel helpers detect
/// that they are already running on a pool worker and must not block on
/// that pool's queue (nested parallelism would deadlock otherwise).
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const { return t_worker_pool == this; }

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
#if HCEP_OBS
    // Workers have no thread-local observer; obs::current() resolves to
    // the process-wide sink when one is installed. Re-queried per task so
    // an observer installed mid-run is picked up.
    obs::Observer* o = obs::current();
    const auto idle_from = o != nullptr
                               ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
#endif
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
#if HCEP_OBS
    if (o != nullptr) {
      const auto waited = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - idle_from);
      o->metrics.add(o->metrics.counter("pool.idle_ns"),
                     static_cast<std::uint64_t>(waited.count()));
      o->metrics.add(o->metrics.counter("pool.tasks"));
    }
#endif
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& f,
                  std::size_t min_block) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Chunk granularity: honor min_block but cap the number of chunks so the
  // shared counter is touched O(threads), not O(n), times.
  const std::size_t chunk =
      std::max({std::size_t{1}, min_block, n / (pool.size() * 32)});

  if (n <= chunk || pool.size() == 1 || pool.on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) f(i);
    return;
  }

  struct SweepState {
    std::atomic<std::size_t> next;
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;
  } state;
  state.next.store(begin, std::memory_order_relaxed);

  auto claim_chunks = [&state, &f, end, chunk] {
    for (;;) {
      if (state.failed.load(std::memory_order_relaxed)) return;
      const std::size_t lo =
          state.next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return;
      const std::size_t hi = std::min(lo + chunk, end);
      try {
        for (std::size_t i = lo; i < hi; ++i) f(i);
      } catch (...) {
        std::lock_guard lock(state.error_mutex);
        if (!state.error) state.error = std::current_exception();
        state.failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // One claiming task per worker that can usefully participate; the
  // calling thread claims chunks too, so a busy pool never stalls the
  // sweep — the caller just ends up doing most of the work itself.
  const std::size_t chunks = (n + chunk - 1) / chunk;
  const std::size_t helpers = std::min(pool.size(), chunks - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i)
    futures.push_back(pool.submit(claim_chunks));
  claim_chunks();
  // Helper tasks trap their exceptions into `state`, so get() only joins.
  for (auto& fut : futures) fut.get();
  if (state.error) std::rethrow_exception(state.error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& f,
                  std::size_t min_block) {
  parallel_for(ThreadPool::global(), begin, end, f, min_block);
}

}  // namespace hcep
