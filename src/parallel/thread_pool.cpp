#include "hcep/parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace hcep {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& f,
                  std::size_t min_block) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t max_blocks = pool.size() * 4;
  const std::size_t block =
      std::max(min_block, (n + max_blocks - 1) / max_blocks);

  if (n <= block) {  // not worth dispatching
    for (std::size_t i = begin; i < end; ++i) f(i);
    return;
  }

  std::vector<std::future<void>> futures;
  for (std::size_t lo = begin; lo < end; lo += block) {
    const std::size_t hi = std::min(lo + block, end);
    futures.push_back(pool.submit([lo, hi, &f] {
      for (std::size_t i = lo; i < hi; ++i) f(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& f,
                  std::size_t min_block) {
  parallel_for(ThreadPool::global(), begin, end, f, min_block);
}

}  // namespace hcep
