#include "hcep/power/curve.hpp"

#include <algorithm>

#include "hcep/util/error.hpp"

namespace hcep::power {

PowerCurve::PowerCurve(PiecewiseLinear samples) : samples_(std::move(samples)) {
  require(!samples_.empty(), "PowerCurve: no samples");
  require(samples_.front_x() <= 0.0 && samples_.back_x() >= 1.0,
          "PowerCurve: samples must cover [0, 1]");
}

PowerCurve PowerCurve::linear(Watts idle, Watts peak) {
  require(peak >= idle, "PowerCurve::linear: peak below idle");
  return PowerCurve{PiecewiseLinear({0.0, 1.0}, {idle.value(), peak.value()})};
}

PowerCurve PowerCurve::quadratic(Watts idle, Watts peak, double a) {
  require(peak >= idle, "PowerCurve::quadratic: peak below idle");
  require(a >= -1.0 && a <= 1.0, "PowerCurve::quadratic: |a| must be <= 1");
  const double span = (peak - idle).value();
  std::vector<double> us = linspace(0.0, 1.0, 65);
  std::vector<double> ps;
  ps.reserve(us.size());
  for (double u : us)
    ps.push_back(idle.value() + span * ((1.0 - a) * u + a * u * u));
  return PowerCurve{PiecewiseLinear(std::move(us), std::move(ps))};
}

PowerCurve PowerCurve::sampled(PiecewiseLinear watts_vs_u) {
  return PowerCurve{std::move(watts_vs_u)};
}

Watts PowerCurve::at(double u) const {
  return Watts{samples_(std::clamp(u, 0.0, 1.0))};
}

double PowerCurve::area() const { return samples_.integral(0.0, 1.0); }

PowerCurve operator+(const PowerCurve& x, const PowerCurve& y) {
  return PowerCurve{x.samples_ + y.samples_};
}

PowerCurve PowerCurve::scaled(double k) const {
  require(k >= 0.0, "PowerCurve::scaled: negative scale");
  return PowerCurve{samples_.scaled(k)};
}

}  // namespace hcep::power
