#include "hcep/power/meter.hpp"

#include <algorithm>
#include <cmath>

#include "hcep/util/error.hpp"

namespace hcep::power {

void PowerTrace::step(Seconds start, Watts level) {
  require(steps_.empty() || start >= steps_.back().start,
          "PowerTrace::step: starts must be non-decreasing");
  if (!steps_.empty() && steps_.back().start == start) {
    steps_.back().level = level;  // same-instant update wins
    return;
  }
  steps_.push_back(PowerSample{start, level});
}

Watts PowerTrace::at(Seconds t) const {
  if (steps_.empty() || t < steps_.front().start) return Watts{0.0};
  // Last step with start <= t.
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](Seconds value, const PowerSample& s) { return value < s.start; });
  --it;
  return it->level;
}

Joules PowerTrace::energy(Seconds horizon) const {
  Joules acc{0.0};
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const Seconds start = std::max(Seconds{0.0}, steps_[i].start);
    if (start >= horizon) break;
    const Seconds end =
        i + 1 < steps_.size() ? std::min(steps_[i + 1].start, horizon)
                              : horizon;
    if (end > start) acc += steps_[i].level * (end - start);
  }
  return acc;
}

Watts PowerTrace::average(Seconds horizon) const {
  require(horizon.value() > 0.0, "PowerTrace::average: empty window");
  return energy(horizon) / horizon;
}

PowerMeter::PowerMeter(MeterSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {
  require(spec_.sample_rate.value() > 0.0, "PowerMeter: zero sample rate");
}

Watts PowerMeter::sample(Watts true_power) {
  const double gain = 1.0 + rng_.normal(0.0, spec_.gain_error);
  double reading =
      true_power.value() * gain + rng_.normal(0.0, spec_.noise_floor.value());
  if (spec_.quantization.value() > 0.0) {
    reading = std::round(reading / spec_.quantization.value()) *
              spec_.quantization.value();
  }
  return Watts{std::max(0.0, reading)};
}

std::vector<PowerSample> PowerMeter::sample_series(const PowerTrace& trace,
                                                   Seconds horizon) {
  require(horizon.value() > 0.0, "PowerMeter: empty window");
  const double period = 1.0 / spec_.sample_rate.value();
  std::vector<PowerSample> out;
  out.reserve(static_cast<std::size_t>(horizon.value() / period) + 1);
  // One reading per sampling interval at the interval midpoint, as the
  // instrument's integrator does; the final partial interval is included.
  for (double t = 0.0; t < horizon.value(); t += period) {
    const double dt = std::min(period, horizon.value() - t);
    out.push_back(
        PowerSample{Seconds{t}, sample(trace.at(Seconds{t + 0.5 * dt}))});
  }
  return out;
}

Joules PowerMeter::measure_energy(const PowerTrace& trace, Seconds horizon) {
  const std::vector<PowerSample> series = sample_series(trace, horizon);
  Joules acc{0.0};
  // Rectangle rule over the sampled series (drop-in for the historical
  // inline loop: interval widths are the gaps between sample starts).
  for (std::size_t i = 0; i < series.size(); ++i) {
    const Seconds end = i + 1 < series.size() ? series[i + 1].start : horizon;
    acc += series[i].level * (end - series[i].start);
  }
  return acc;
}

Watts PowerMeter::measure_average(const PowerTrace& trace, Seconds horizon) {
  return measure_energy(trace, horizon) / horizon;
}

}  // namespace hcep::power
