#include "hcep/traffic/admission.hpp"

#include <algorithm>
#include <cmath>

#include "hcep/util/error.hpp"

namespace hcep::traffic {

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_(rate_per_s), burst_(burst), tokens_(burst) {
  require(rate_ > 0.0, "TokenBucket: rate must be positive");
  require(burst_ > 0.0, "TokenBucket: burst must be positive");
}

void TokenBucket::refill(Seconds now) {
  require(now >= last_, "TokenBucket: time moved backwards");
  tokens_ = std::min(burst_, tokens_ + rate_ * (now - last_).value());
  last_ = now;
}

bool TokenBucket::try_acquire(Seconds now, double cost) {
  require(cost > 0.0, "TokenBucket: cost must be positive");
  refill(now);
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

double TokenBucket::level(Seconds now) const {
  return std::min(burst_, tokens_ + rate_ * (now - last_).value());
}

Seconds RetryPolicy::backoff_after(std::uint32_t attempt) const {
  require(attempt >= 1, "RetryPolicy: attempts are 1-based");
  return base_backoff *
         std::pow(multiplier, static_cast<double>(attempt - 1));
}

}  // namespace hcep::traffic
