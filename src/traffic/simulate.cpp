#include "hcep/traffic/simulate.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>

#include "hcep/des/simulator.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/workload/node_ops.hpp"

namespace hcep::traffic {

namespace {

/// One physical node: per-class service/dynamic-power tables plus live
/// queue state (same materialization as cluster::simulate_dispatch).
struct Node {
  std::string type;
  std::vector<Seconds> service;  ///< indexed by class
  std::vector<Watts> dynamic;    ///< extra power while serving, per class
  Watts idle{};
  std::uint64_t queued = 0;
  Seconds free_at{};
  std::uint64_t served = 0;
  Seconds busy_time{};
};

std::vector<Node> materialize_nodes(const model::ClusterSpec& cluster,
                                    const std::vector<TrafficClass>& classes) {
  std::vector<Node> nodes;
  for (const auto& g : cluster.groups) {
    if (g.count == 0) continue;
    std::vector<Seconds> service;
    std::vector<Watts> dynamic;
    for (const auto& c : classes) {
      require(c.workload.has_node(g.spec.name),
              "simulate_traffic: workload '" + c.workload.name +
                  "' lacks demand for '" + g.spec.name + "'");
      const auto& demand = c.workload.demand_for(g.spec.name);
      const double rate =
          workload::unit_throughput(demand, g.spec, g.cores(), g.freq());
      service.push_back(Seconds{c.workload.units_per_job / rate});
      const Watts busy = workload::busy_power(
          demand, g.spec, g.cores(), g.freq(),
          c.workload.power_scale_for(g.spec.name));
      dynamic.push_back(busy - g.spec.power.idle);
    }
    for (unsigned i = 0; i < g.count; ++i) {
      nodes.push_back(Node{.type = g.spec.name,
                           .service = service,
                           .dynamic = dynamic,
                           .idle = g.spec.power.idle,
                           .queued = 0,
                           .free_at = Seconds{0.0},
                           .served = 0,
                           .busy_time = Seconds{0.0}});
    }
  }
  require(!nodes.empty(), "simulate_traffic: empty cluster");
  return nodes;
}

/// Per-class normalized cumulative weight distribution.
std::vector<double> cumulative_weights(
    const std::vector<TrafficClass>& classes) {
  double total = 0.0;
  for (const auto& c : classes) {
    require(c.weight > 0.0, "simulate_traffic: non-positive class weight");
    total += c.weight;
  }
  std::vector<double> cumulative;
  double acc = 0.0;
  for (const auto& c : classes) {
    acc += c.weight / total;
    cumulative.push_back(acc);
  }
  cumulative.back() = 1.0;
  return cumulative;
}

}  // namespace

double cluster_capacity_per_s(const model::ClusterSpec& cluster,
                              const std::vector<TrafficClass>& classes) {
  cluster.validate();
  require(!classes.empty(), "cluster_capacity_per_s: no traffic classes");
  const std::vector<Node> nodes = materialize_nodes(cluster, classes);
  double weight_total = 0.0;
  for (const auto& c : classes) weight_total += c.weight;
  double capacity = 0.0;
  for (const auto& n : nodes) {
    double mean_service = 0.0;
    for (std::size_t s = 0; s < classes.size(); ++s)
      mean_service +=
          classes[s].weight / weight_total * n.service[s].value();
    capacity += 1.0 / mean_service;
  }
  return capacity;
}

TrafficResult simulate_traffic(const model::ClusterSpec& cluster,
                               const std::vector<TrafficClass>& classes,
                               const ArrivalProcess& arrivals,
                               const TrafficOptions& options) {
  cluster.validate();
  require(!classes.empty(), "simulate_traffic: no traffic classes");
  require(options.requests > 0, "simulate_traffic: need at least one request");
  require(options.retry.max_attempts >= 1,
          "simulate_traffic: retry.max_attempts must be >= 1");

  std::vector<Node> nodes = materialize_nodes(cluster, classes);
  const std::vector<double> cumulative = cumulative_weights(classes);

  Rng rng(options.seed);
  des::Simulator sim;
  std::unique_ptr<ArrivalProcess> gen = arrivals.clone();

  std::unique_ptr<TokenBucket> bucket;
  if (options.admission.bucket_enabled()) {
    bucket = std::make_unique<TokenBucket>(
        options.admission.bucket_rate_per_s,
        std::max(1.0, options.admission.bucket_burst));
  }

#if HCEP_OBS
  obs::Observer* o = obs::current();
  obs::MetricId offered_m = 0, admitted_m = 0, shed_m = 0, retries_m = 0,
                completed_m = 0, failed_m = 0, sojourn_m = 0;
  obs::StringId cat_s = 0, request_s = 0, wait_key_s = 0, inflight_s = 0,
                shed_cat_s = 0, bucket_s = 0, queue_s = 0;
  if (o != nullptr) {
    offered_m = o->metrics.counter("traffic.offered");
    admitted_m = o->metrics.counter("traffic.admitted");
    shed_m = o->metrics.counter("traffic.shed");
    retries_m = o->metrics.counter("traffic.retries");
    completed_m = o->metrics.counter("traffic.completed");
    failed_m = o->metrics.counter("traffic.failed");
    sojourn_m = o->metrics.histogram(
        "traffic.sojourn_s", {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                              0.25, 0.5, 1.0, 2.5, 5.0, 10.0});
    cat_s = o->tracer.intern("traffic");
    request_s = o->tracer.intern("request");
    wait_key_s = o->tracer.intern("wait_s");
    inflight_s = o->tracer.intern("traffic_inflight");
    shed_cat_s = o->tracer.intern("shed");
    bucket_s = o->tracer.intern("bucket");
    queue_s = o->tracer.intern("queue_depth");
  }
#endif

  // Dispatch-policy node choice, shared with cluster::simulate_dispatch
  // semantics.
  std::size_t rr_cursor = 0;
  const auto pick_node = [&](std::size_t cls) -> std::size_t {
    switch (options.policy) {
      case cluster::DispatchPolicy::kRoundRobin: {
        const std::size_t i = rr_cursor;
        rr_cursor = (rr_cursor + 1) % nodes.size();
        return i;
      }
      case cluster::DispatchPolicy::kRandom:
        return static_cast<std::size_t>(rng.uniform_int(nodes.size()));
      case cluster::DispatchPolicy::kJoinShortestQueue: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < nodes.size(); ++i) {
          if (nodes[i].queued < nodes[best].queued ||
              (nodes[i].queued == nodes[best].queued &&
               nodes[i].service[cls] < nodes[best].service[cls])) {
            best = i;
          }
        }
        return best;
      }
      case cluster::DispatchPolicy::kFastestFirst: {
        std::size_t best = 0;
        double best_eta = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          const double backlog =
              std::max(0.0, (nodes[i].free_at - sim.now()).value());
          const double eta = backlog + nodes[i].service[cls].value();
          if (eta < best_eta) {
            best_eta = eta;
            best = i;
          }
        }
        return best;
      }
      case cluster::DispatchPolicy::kLeastEnergy: {
        std::size_t best = 0;
        double best_score = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          const double joules = nodes[i].dynamic[cls].value() *
                                nodes[i].service[cls].value();
          const double backlog =
              std::max(0.0, (nodes[i].free_at - sim.now()).value());
          const double score = joules + backlog * 1e-3;
          if (score < best_score) {
            best_score = score;
            best = i;
          }
        }
        return best;
      }
    }
    throw PreconditionError("simulate_traffic: unknown policy");
  };

  TrafficResult out;
  out.arrival_process = gen->name();

  struct ClassSamples {
    std::vector<double> wait, service, sojourn;
    std::uint64_t offered = 0, admitted = 0, shed = 0, retries = 0,
                  completed = 0, failed = 0, slo_violations = 0;
    Joules dynamic_energy{};
  };
  std::vector<ClassSamples> per_class(classes.size());
  std::vector<double> all_wait, all_service, all_sojourn;
  all_wait.reserve(options.requests);
  all_service.reserve(options.requests);
  all_sojourn.reserve(options.requests);

  Joules dynamic_energy{0.0};
  Seconds makespan{0.0};
  std::uint64_t inflight = 0;

#if HCEP_OBS
  const auto note_inflight = [&]() {
    if (o != nullptr) {
      o->tracer.counter(sim.now().value(), cat_s, inflight_s,
                        static_cast<double>(inflight));
    }
  };
#else
  const auto note_inflight = [] {};
#endif

  // One in-flight request attempt; retries carry the same first_arrival.
  struct Request {
    std::size_t cls = 0;
    Seconds first_arrival{};
    std::uint32_t attempt = 1;
  };

  std::function<void(Request)> attempt;

  const auto finish = [&](std::size_t node_index, std::size_t cls,
                          Seconds first_arrival, Seconds wait) {
    Node& node = nodes[node_index];
    --node.queued;
    ++node.served;
    const Seconds service = node.service[cls];
    node.busy_time += service;
    const Joules joules = node.dynamic[cls] * service;
    dynamic_energy += joules;
    per_class[cls].dynamic_energy += joules;

    const Seconds sojourn = sim.now() - first_arrival;
    all_wait.push_back(wait.value());
    all_service.push_back(service.value());
    all_sojourn.push_back(sojourn.value());
    per_class[cls].wait.push_back(wait.value());
    per_class[cls].service.push_back(service.value());
    per_class[cls].sojourn.push_back(sojourn.value());
    ++out.completed;
    ++per_class[cls].completed;
    if (classes[cls].slo.enabled() && sojourn > classes[cls].slo.latency)
      ++per_class[cls].slo_violations;
    makespan = std::max(makespan, sim.now());
    --inflight;
#if HCEP_OBS
    if (o != nullptr) {
      o->tracer.end(sim.now().value(), cat_s, request_s);
      o->metrics.add(completed_m);
      o->metrics.observe(sojourn_m, sojourn.value());
    }
#endif
    note_inflight();
  };

  const auto reject = [&](Request req) {
    if (req.attempt < options.retry.max_attempts) {
      ++out.retries;
      ++per_class[req.cls].retries;
#if HCEP_OBS
      if (o != nullptr) o->metrics.add(retries_m);
#endif
      const Seconds delay = options.retry.backoff_after(req.attempt);
      ++req.attempt;
      sim.schedule_in(delay, [&attempt, req]() { attempt(req); });
    } else {
      ++out.failed;
      ++per_class[req.cls].failed;
      makespan = std::max(makespan, sim.now());
      --inflight;
#if HCEP_OBS
      if (o != nullptr) o->metrics.add(failed_m);
#endif
      note_inflight();
    }
  };

  attempt = [&](Request req) {
    const Seconds now = sim.now();

    if (bucket && !bucket->try_acquire(now)) {
      ++out.shed_bucket;
      ++per_class[req.cls].shed;
#if HCEP_OBS
      if (o != nullptr) {
        o->metrics.add(shed_m);
        o->tracer.instant(now.value(), shed_cat_s, bucket_s);
      }
#endif
      reject(req);
      return;
    }

    const std::size_t i = pick_node(req.cls);
    if (options.admission.shedding_enabled() &&
        nodes[i].queued >= options.admission.max_queue_depth) {
      ++out.shed_queue;
      ++per_class[req.cls].shed;
#if HCEP_OBS
      if (o != nullptr) {
        o->metrics.add(shed_m);
        o->tracer.instant(now.value(), shed_cat_s, queue_s);
      }
#endif
      reject(req);
      return;
    }

    ++out.admitted;
    ++per_class[req.cls].admitted;
    Node& n = nodes[i];
    ++n.queued;
    const Seconds start = std::max(now, n.free_at);
    const Seconds wait = start - now;
    const Seconds done = start + n.service[req.cls];
    n.free_at = done;
#if HCEP_OBS
    if (o != nullptr) {
      o->metrics.add(admitted_m);
      o->tracer.begin(start.value(), cat_s, request_s, wait_key_s,
                      wait.value());
    }
#endif
    sim.schedule_at(done, [&, i, req, wait]() {
      finish(i, req.cls, req.first_arrival, wait);
    });
  };

  // Open-loop arrival pump: offered first attempts, classes sampled by
  // weight (single-class streams skip the draw).
  std::uint64_t offered = 0;
  std::function<void()> arrive = [&]() {
    if (offered >= options.requests) return;
    ++offered;
    ++out.offered;

    Request req;
    req.first_arrival = sim.now();
    if (classes.size() > 1) {
      const double coin = rng.uniform01();
      while (req.cls + 1 < classes.size() && coin > cumulative[req.cls])
        ++req.cls;
    }
    ++per_class[req.cls].offered;
    ++inflight;
#if HCEP_OBS
    if (o != nullptr) o->metrics.add(offered_m);
#endif
    note_inflight();
    attempt(req);

    const Seconds next = gen->next(sim.now(), rng);
    if (next.value() < std::numeric_limits<double>::infinity())
      sim.schedule_at(next, arrive);
  };
  const Seconds first = gen->next(Seconds{0.0}, rng);
  if (first.value() < std::numeric_limits<double>::infinity())
    sim.schedule_at(first, arrive);
  sim.run();

  // ------------------------------------------------------------ summaries
  out.wait = LatencySummary::from_samples(all_wait);
  out.service = LatencySummary::from_samples(all_service);
  out.sojourn = LatencySummary::from_samples(all_sojourn);

  Watts idle_floor{0.0};
  for (const auto& n : nodes) idle_floor += n.idle;
  const Joules idle_energy = idle_floor * makespan;
  out.makespan = makespan;
  out.energy = idle_energy + dynamic_energy;
  if (makespan.value() > 0.0) out.average_power = out.energy / makespan;
  if (out.completed > 0)
    out.energy_per_request = out.energy / static_cast<double>(out.completed);

  for (std::size_t s = 0; s < classes.size(); ++s) {
    ClassStats st;
    st.name = classes[s].workload.name;
    st.slo = classes[s].slo;
    ClassSamples& cs = per_class[s];
    st.offered = cs.offered;
    st.admitted = cs.admitted;
    st.shed = cs.shed;
    st.retries = cs.retries;
    st.completed = cs.completed;
    st.failed = cs.failed;
    st.slo_violations = cs.slo_violations;
    st.wait = LatencySummary::from_samples(cs.wait);
    st.service = LatencySummary::from_samples(cs.service);
    st.sojourn = LatencySummary::from_samples(cs.sojourn);
    if (cs.completed > 0 && out.completed > 0) {
      // Idle energy attributed by completion share, dynamic exactly.
      const Joules idle_share =
          idle_energy * (static_cast<double>(cs.completed) /
                         static_cast<double>(out.completed));
      st.energy_per_request = (idle_share + cs.dynamic_energy) /
                              static_cast<double>(cs.completed);
    }
    out.classes.push_back(std::move(st));
  }

  // Per node type (dispatch-result convention: busy fraction is averaged
  // over the nodes of the type).
  for (const auto& n : nodes) {
    auto it = std::find_if(
        out.nodes.begin(), out.nodes.end(),
        [&](const cluster::NodeLoad& l) { return l.node_name == n.type; });
    if (it == out.nodes.end()) {
      out.nodes.push_back(cluster::NodeLoad{n.type, 0, 0.0});
      it = out.nodes.end() - 1;
    }
    it->jobs_served += n.served;
    it->busy_fraction += n.busy_time.value();
  }
  for (auto& l : out.nodes) {
    double count = 0;
    for (const auto& n : nodes)
      if (n.type == l.node_name) count += 1.0;
    if (makespan.value() > 0.0)
      l.busy_fraction /= std::max(1.0, count) * makespan.value();
  }
  return out;
}

JsonValue TrafficResult::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("schema_version", JsonValue::number(std::int64_t{1}));
  o.set("arrival_process", JsonValue::string(arrival_process));
  o.set("offered", JsonValue::number(static_cast<std::int64_t>(offered)));
  o.set("admitted", JsonValue::number(static_cast<std::int64_t>(admitted)));
  o.set("shed_bucket",
        JsonValue::number(static_cast<std::int64_t>(shed_bucket)));
  o.set("shed_queue",
        JsonValue::number(static_cast<std::int64_t>(shed_queue)));
  o.set("retries", JsonValue::number(static_cast<std::int64_t>(retries)));
  o.set("completed",
        JsonValue::number(static_cast<std::int64_t>(completed)));
  o.set("failed", JsonValue::number(static_cast<std::int64_t>(failed)));
  o.set("makespan_s", JsonValue::number(makespan.value()));
  o.set("wait", wait.to_json());
  o.set("service", service.to_json());
  o.set("sojourn", sojourn.to_json());
  o.set("energy_j", JsonValue::number(energy.value()));
  o.set("average_power_w", JsonValue::number(average_power.value()));
  o.set("energy_per_request_j",
        JsonValue::number(energy_per_request.value()));
  JsonValue cls = JsonValue::array();
  for (const auto& c : classes) cls.push(c.to_json());
  o.set("classes", std::move(cls));
  JsonValue nds = JsonValue::array();
  for (const auto& n : nodes) {
    JsonValue nd = JsonValue::object();
    nd.set("node", JsonValue::string(n.node_name));
    nd.set("requests",
           JsonValue::number(static_cast<std::int64_t>(n.jobs_served)));
    nd.set("busy_fraction", JsonValue::number(n.busy_fraction));
    nds.push(std::move(nd));
  }
  o.set("nodes", std::move(nds));
  return o;
}

}  // namespace hcep::traffic
