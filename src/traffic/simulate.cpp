#include "hcep/traffic/simulate.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "hcep/des/sharded.hpp"
#include "hcep/des/simulator.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/workload/node_ops.hpp"

namespace hcep::traffic {

namespace {

/// One physical node: per-class service/dynamic-power tables plus live
/// queue state (same materialization as cluster::simulate_dispatch).
struct Node {
  std::string type;
  std::vector<Seconds> service;  ///< indexed by class
  std::vector<Watts> dynamic;    ///< extra power while serving, per class
  Watts idle{};
  std::uint64_t queued = 0;
  Seconds free_at{};
  std::uint64_t served = 0;
  Seconds busy_time{};
};

std::vector<Node> materialize_nodes(const model::ClusterSpec& cluster,
                                    const std::vector<TrafficClass>& classes) {
  std::vector<Node> nodes;
  for (const auto& g : cluster.groups) {
    if (g.count == 0) continue;
    std::vector<Seconds> service;
    std::vector<Watts> dynamic;
    for (const auto& c : classes) {
      require(c.workload.has_node(g.spec.name),
              "simulate_traffic: workload '" + c.workload.name +
                  "' lacks demand for '" + g.spec.name + "'");
      const auto& demand = c.workload.demand_for(g.spec.name);
      const double rate =
          workload::unit_throughput(demand, g.spec, g.cores(), g.freq());
      service.push_back(Seconds{c.workload.units_per_job / rate});
      const Watts busy = workload::busy_power(
          demand, g.spec, g.cores(), g.freq(),
          c.workload.power_scale_for(g.spec.name));
      dynamic.push_back(busy - g.spec.power.idle);
    }
    for (unsigned i = 0; i < g.count; ++i) {
      nodes.push_back(Node{.type = g.spec.name,
                           .service = service,
                           .dynamic = dynamic,
                           .idle = g.spec.power.idle,
                           .queued = 0,
                           .free_at = Seconds{0.0},
                           .served = 0,
                           .busy_time = Seconds{0.0}});
    }
  }
  require(!nodes.empty(), "simulate_traffic: empty cluster");
  return nodes;
}

/// Per-class normalized cumulative weight distribution.
std::vector<double> cumulative_weights(
    const std::vector<TrafficClass>& classes) {
  double total = 0.0;
  for (const auto& c : classes) {
    require(c.weight > 0.0, "simulate_traffic: non-positive class weight");
    total += c.weight;
  }
  std::vector<double> cumulative;
  double acc = 0.0;
  for (const auto& c : classes) {
    acc += c.weight / total;
    cumulative.push_back(acc);
  }
  cumulative.back() = 1.0;
  return cumulative;
}

struct ClassSamples {
  std::vector<double> wait, service, sojourn;
  std::uint64_t offered = 0, admitted = 0, shed = 0, retries = 0,
                completed = 0, failed = 0, slo_violations = 0;
  Joules dynamic_energy{};
};

/// One in-flight request attempt; retries carry the same first_arrival.
/// Sized so the hot-path callback captures below stay within
/// des::Callback's inline buffer.
struct Request {
  std::size_t cls = 0;
  Seconds first_arrival{};
  std::uint32_t attempt = 1;
};
static_assert(sizeof(Request) <= 24, "Request must stay callback-inline");

/// The per-event-loop simulation engine: one per shard (single-shard runs
/// use exactly one over all nodes, preserving the seed code path's event
/// and RNG order byte-for-byte).
///
/// Every callback this engine schedules captures at most {Engine*, node
/// index, Request, Seconds} — 48 bytes — so no event allocates
/// (static_asserted at each schedule site against
/// des::Callback::stores_inline).
class Engine {
 public:
  Engine(des::Simulator& sim, const std::vector<TrafficClass>& classes,
         const std::vector<double>& cumulative,
         const TrafficOptions& options, std::vector<Node> nodes,
         std::uint64_t request_budget, Rng rng, bool tracing)
      : sim_(sim),
        classes_(classes),
        cumulative_(cumulative),
        options_(options),
        nodes_(std::move(nodes)),
        request_budget_(request_budget),
        rng_(rng),
        tracing_(tracing),
        per_class_(classes.size()) {
    if (options.admission.bucket_enabled()) {
      const double split = static_cast<double>(options.shards);
      bucket_ = std::make_unique<TokenBucket>(
          options.admission.bucket_rate_per_s / split,
          std::max(1.0, options.admission.bucket_burst / split));
    }
    all_wait_.reserve(request_budget);
    all_service_.reserve(request_budget);
    all_sojourn_.reserve(request_budget);
#if HCEP_OBS
    o_ = obs::current();
    if (o_ != nullptr) {
      offered_m_ = o_->metrics.counter("traffic.offered");
      admitted_m_ = o_->metrics.counter("traffic.admitted");
      shed_m_ = o_->metrics.counter("traffic.shed");
      retries_m_ = o_->metrics.counter("traffic.retries");
      completed_m_ = o_->metrics.counter("traffic.completed");
      failed_m_ = o_->metrics.counter("traffic.failed");
      sojourn_m_ = o_->metrics.histogram(
          "traffic.sojourn_s", {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                                0.25, 0.5, 1.0, 2.5, 5.0, 10.0});
      cat_s_ = o_->tracer.intern("traffic");
      request_s_ = o_->tracer.intern("request");
      wait_key_s_ = o_->tracer.intern("wait_s");
      inflight_s_ = o_->tracer.intern("traffic_inflight");
      shed_cat_s_ = o_->tracer.intern("shed");
      bucket_s_ = o_->tracer.intern("bucket");
      queue_s_ = o_->tracer.intern("queue_depth");
    }
#endif
  }

  /// Open-loop arrival pump (single-shard path): the generator is
  /// sampled inside the event loop, exactly like the seed code.
  void start_pump(const ArrivalProcess& arrivals) {
    gen_ = arrivals.clone();
    const Seconds first = gen_->next(Seconds{0.0}, rng_);
    if (first.value() < std::numeric_limits<double>::infinity())
      schedule_pump(first);
  }

  /// Pre-assigned arrivals (sharded path): (time, class) pairs generated
  /// up front from the shared arrival stream.
  void preload(const std::vector<std::pair<Seconds, std::size_t>>& arrivals) {
    for (const auto& [t, cls] : arrivals) {
      auto cb = [this, cls = cls]() { admit_arrival(cls); };
      static_assert(des::Callback::stores_inline<decltype(cb)>);
      sim_.schedule_at(t, std::move(cb));
    }
  }

  // ---- merged outputs ----
  std::uint64_t offered = 0, admitted = 0, shed_bucket = 0, shed_queue = 0,
                retries = 0, completed = 0, failed = 0;
  [[nodiscard]] Seconds makespan() const { return makespan_; }
  [[nodiscard]] Joules dynamic_energy() const { return dynamic_energy_; }
  [[nodiscard]] std::vector<ClassSamples>& per_class() { return per_class_; }
  [[nodiscard]] std::vector<Node>& nodes() { return nodes_; }
  [[nodiscard]] std::vector<double>& all_wait() { return all_wait_; }
  [[nodiscard]] std::vector<double>& all_service() { return all_service_; }
  [[nodiscard]] std::vector<double>& all_sojourn() { return all_sojourn_; }

 private:
  void schedule_pump(Seconds t) {
    auto cb = [this]() { pump_arrival(); };
    static_assert(des::Callback::stores_inline<decltype(cb)>);
    sim_.schedule_at(t, std::move(cb));
  }

  /// One pump firing: admit an arrival (class drawn here) and schedule
  /// the next one. Mirrors the seed code's draw order: class coin, then
  /// attempt (which may draw for node picks), then the generator.
  void pump_arrival() {
    if (offered >= request_budget_) return;
    std::size_t cls = 0;
    if (classes_.size() > 1) {
      const double coin = rng_.uniform01();
      while (cls + 1 < classes_.size() && coin > cumulative_[cls]) ++cls;
    }
    arrive(cls);
    const Seconds next = gen_->next(sim_.now(), rng_);
    if (next.value() < std::numeric_limits<double>::infinity())
      schedule_pump(next);
  }

  /// Preloaded-arrival firing (class was drawn at generation time).
  void admit_arrival(std::size_t cls) { arrive(cls); }

  void arrive(std::size_t cls) {
    ++offered;
    Request req;
    req.cls = cls;
    req.first_arrival = sim_.now();
    ++per_class_[cls].offered;
    ++inflight_;
#if HCEP_OBS
    if (o_ != nullptr) o_->metrics.add(offered_m_);
#endif
    note_inflight();
    attempt(req);
  }

  void note_inflight() {
#if HCEP_OBS
    if (o_ != nullptr && tracing_) {
      o_->tracer.counter(sim_.now().value(), cat_s_, inflight_s_,
                         static_cast<double>(inflight_));
    }
#endif
  }

  /// Dispatch-policy node choice, shared with cluster::simulate_dispatch
  /// semantics (over this engine's node subset).
  std::size_t pick_node(std::size_t cls) {
    switch (options_.policy) {
      case cluster::DispatchPolicy::kRoundRobin: {
        const std::size_t i = rr_cursor_;
        rr_cursor_ = (rr_cursor_ + 1) % nodes_.size();
        return i;
      }
      case cluster::DispatchPolicy::kRandom:
        return static_cast<std::size_t>(rng_.uniform_int(nodes_.size()));
      case cluster::DispatchPolicy::kJoinShortestQueue: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < nodes_.size(); ++i) {
          if (nodes_[i].queued < nodes_[best].queued ||
              (nodes_[i].queued == nodes_[best].queued &&
               nodes_[i].service[cls] < nodes_[best].service[cls])) {
            best = i;
          }
        }
        return best;
      }
      case cluster::DispatchPolicy::kFastestFirst: {
        std::size_t best = 0;
        double best_eta = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
          const double backlog =
              std::max(0.0, (nodes_[i].free_at - sim_.now()).value());
          const double eta = backlog + nodes_[i].service[cls].value();
          if (eta < best_eta) {
            best_eta = eta;
            best = i;
          }
        }
        return best;
      }
      case cluster::DispatchPolicy::kLeastEnergy: {
        std::size_t best = 0;
        double best_score = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
          const double joules = nodes_[i].dynamic[cls].value() *
                                nodes_[i].service[cls].value();
          const double backlog =
              std::max(0.0, (nodes_[i].free_at - sim_.now()).value());
          const double score = joules + backlog * 1e-3;
          if (score < best_score) {
            best_score = score;
            best = i;
          }
        }
        return best;
      }
    }
    throw PreconditionError("simulate_traffic: unknown policy");
  }

  void attempt(Request req) {
    const Seconds now = sim_.now();

    if (bucket_ && !bucket_->try_acquire(now)) {
      ++shed_bucket;
      ++per_class_[req.cls].shed;
#if HCEP_OBS
      if (o_ != nullptr) {
        o_->metrics.add(shed_m_);
        if (tracing_)
          o_->tracer.instant(now.value(), shed_cat_s_, bucket_s_);
      }
#endif
      reject(req);
      return;
    }

    const std::size_t i = pick_node(req.cls);
    if (options_.admission.shedding_enabled() &&
        nodes_[i].queued >= options_.admission.max_queue_depth) {
      ++shed_queue;
      ++per_class_[req.cls].shed;
#if HCEP_OBS
      if (o_ != nullptr) {
        o_->metrics.add(shed_m_);
        if (tracing_)
          o_->tracer.instant(now.value(), shed_cat_s_, queue_s_);
      }
#endif
      reject(req);
      return;
    }

    ++admitted;
    ++per_class_[req.cls].admitted;
    Node& n = nodes_[i];
    ++n.queued;
    const Seconds start = std::max(now, n.free_at);
    const Seconds wait = start - now;
    const Seconds done = start + n.service[req.cls];
    n.free_at = done;
#if HCEP_OBS
    if (o_ != nullptr) {
      o_->metrics.add(admitted_m_);
      if (tracing_)
        o_->tracer.begin(start.value(), cat_s_, request_s_, wait_key_s_,
                         wait.value());
    }
#endif
    // The kernel hot path: {Engine*, index, Request, Seconds} is exactly
    // des::Callback's 48-byte inline budget — no allocation per event.
    auto cb = [this, i, req, wait]() {
      finish(i, req.cls, req.first_arrival, wait);
    };
    static_assert(des::Callback::stores_inline<decltype(cb)>);
    sim_.schedule_at(done, std::move(cb));
  }

  void reject(Request req) {
    if (req.attempt < options_.retry.max_attempts) {
      ++retries;
      ++per_class_[req.cls].retries;
#if HCEP_OBS
      if (o_ != nullptr) o_->metrics.add(retries_m_);
#endif
      const Seconds delay = options_.retry.backoff_after(req.attempt);
      ++req.attempt;
      auto cb = [this, req]() { attempt(req); };
      static_assert(des::Callback::stores_inline<decltype(cb)>);
      sim_.schedule_in(delay, std::move(cb));
    } else {
      ++failed;
      ++per_class_[req.cls].failed;
      makespan_ = std::max(makespan_, sim_.now());
      --inflight_;
#if HCEP_OBS
      if (o_ != nullptr) o_->metrics.add(failed_m_);
#endif
      note_inflight();
    }
  }

  void finish(std::size_t node_index, std::size_t cls, Seconds first_arrival,
              Seconds wait) {
    Node& node = nodes_[node_index];
    --node.queued;
    ++node.served;
    const Seconds service = node.service[cls];
    node.busy_time += service;
    const Joules joules = node.dynamic[cls] * service;
    dynamic_energy_ += joules;
    per_class_[cls].dynamic_energy += joules;

    const Seconds sojourn = sim_.now() - first_arrival;
    all_wait_.push_back(wait.value());
    all_service_.push_back(service.value());
    all_sojourn_.push_back(sojourn.value());
    per_class_[cls].wait.push_back(wait.value());
    per_class_[cls].service.push_back(service.value());
    per_class_[cls].sojourn.push_back(sojourn.value());
    ++completed;
    ++per_class_[cls].completed;
    if (classes_[cls].slo.enabled() && sojourn > classes_[cls].slo.latency)
      ++per_class_[cls].slo_violations;
    makespan_ = std::max(makespan_, sim_.now());
    --inflight_;
#if HCEP_OBS
    if (o_ != nullptr) {
      if (tracing_) o_->tracer.end(sim_.now().value(), cat_s_, request_s_);
      o_->metrics.add(completed_m_);
      o_->metrics.observe(sojourn_m_, sojourn.value());
    }
#endif
    note_inflight();
  }

  des::Simulator& sim_;
  const std::vector<TrafficClass>& classes_;
  const std::vector<double>& cumulative_;
  const TrafficOptions& options_;
  std::vector<Node> nodes_;
  std::uint64_t request_budget_;
  Rng rng_;
  bool tracing_;
  std::unique_ptr<ArrivalProcess> gen_;
  std::unique_ptr<TokenBucket> bucket_;
  std::size_t rr_cursor_ = 0;
  std::uint64_t inflight_ = 0;
  Seconds makespan_{};
  Joules dynamic_energy_{};
  std::vector<ClassSamples> per_class_;
  std::vector<double> all_wait_, all_service_, all_sojourn_;
#if HCEP_OBS
  obs::Observer* o_ = nullptr;
  obs::MetricId offered_m_ = 0, admitted_m_ = 0, shed_m_ = 0, retries_m_ = 0,
                completed_m_ = 0, failed_m_ = 0, sojourn_m_ = 0;
  obs::StringId cat_s_ = 0, request_s_ = 0, wait_key_s_ = 0, inflight_s_ = 0,
                shed_cat_s_ = 0, bucket_s_ = 0, queue_s_ = 0;
#endif
};

}  // namespace

double cluster_capacity_per_s(const model::ClusterSpec& cluster,
                              const std::vector<TrafficClass>& classes) {
  cluster.validate();
  require(!classes.empty(), "cluster_capacity_per_s: no traffic classes");
  const std::vector<Node> nodes = materialize_nodes(cluster, classes);
  double weight_total = 0.0;
  for (const auto& c : classes) weight_total += c.weight;
  double capacity = 0.0;
  for (const auto& n : nodes) {
    double mean_service = 0.0;
    for (std::size_t s = 0; s < classes.size(); ++s)
      mean_service +=
          classes[s].weight / weight_total * n.service[s].value();
    capacity += 1.0 / mean_service;
  }
  return capacity;
}

TrafficResult simulate_traffic(const model::ClusterSpec& cluster,
                               const std::vector<TrafficClass>& classes,
                               const ArrivalProcess& arrivals,
                               const TrafficOptions& options) {
  cluster.validate();
  require(!classes.empty(), "simulate_traffic: no traffic classes");
  require(options.requests > 0, "simulate_traffic: need at least one request");
  require(options.retry.max_attempts >= 1,
          "simulate_traffic: retry.max_attempts must be >= 1");
  require(options.shards >= 1, "simulate_traffic: shards must be >= 1");

  std::vector<Node> all_nodes = materialize_nodes(cluster, classes);
  require(options.shards <= all_nodes.size(),
          "simulate_traffic: more shards than nodes");
  const std::vector<double> cumulative = cumulative_weights(classes);
  const std::size_t shard_count = options.shards;

  std::vector<std::unique_ptr<Engine>> engines;
  std::string process_name;

  if (shard_count == 1) {
    // Classic path: one event loop, generator sampled in-loop. This is
    // byte-identical (same RNG draw order, same event sequence) to the
    // pre-sharding implementation.
    auto sim = std::make_unique<des::Simulator>();
    engines.push_back(std::make_unique<Engine>(
        *sim, classes, cumulative, options, std::move(all_nodes),
        options.requests, Rng(options.seed), /*tracing=*/true));
    std::unique_ptr<ArrivalProcess> gen = arrivals.clone();
    process_name = gen->name();
    engines[0]->start_pump(*gen);
    sim->run();
  } else {
    // Sharded path: the arrival stream (time and class of every request)
    // is generated up front from the seed — the same stream regardless
    // of shard count — then requests and nodes are partitioned
    // round-robin across shards. Shards share no mutable state, so the
    // windows can run in parallel; per-request tracer spans are disabled
    // (thread interleaving would make the trace nondeterministic) while
    // the atomic metrics counters stay on.
    std::unique_ptr<ArrivalProcess> gen = arrivals.clone();
    process_name = gen->name();
    Rng arrival_rng(options.seed);
    std::vector<std::vector<std::pair<Seconds, std::size_t>>> shard_arrivals(
        shard_count);
    Seconds t{0.0};
    for (std::uint64_t k = 0; k < options.requests; ++k) {
      t = gen->next(t, arrival_rng);
      if (!(t.value() < std::numeric_limits<double>::infinity())) break;
      std::size_t cls = 0;
      if (classes.size() > 1) {
        const double coin = arrival_rng.uniform01();
        while (cls + 1 < classes.size() && coin > cumulative[cls]) ++cls;
      }
      shard_arrivals[k % shard_count].emplace_back(t, cls);
    }

    std::vector<std::vector<Node>> shard_nodes(shard_count);
    for (std::size_t i = 0; i < all_nodes.size(); ++i)
      shard_nodes[i % shard_count].push_back(std::move(all_nodes[i]));

    // The traffic shards exchange no cross-shard events, so the
    // conservative window can span the whole run: one window, one
    // barrier, full parallelism.
    des::ShardedSimulator sharded(shard_count, Seconds{1e300});
    for (std::size_t s = 0; s < shard_count; ++s) {
      engines.push_back(std::make_unique<Engine>(
          sharded.shard(s), classes, cumulative, options,
          std::move(shard_nodes[s]),
          options.requests / shard_count + 1,
          Rng(options.seed).split(static_cast<unsigned>(s)),
          /*tracing=*/false));
      engines[s]->preload(shard_arrivals[s]);
    }
    sharded.run(options.parallel_shards);
  }

  // ------------------------------------------------------------ summaries
  // Merge in shard order — deterministic for a fixed (seed, shards).
  TrafficResult out;
  out.arrival_process = process_name;
  out.shards = shard_count;

  std::vector<double> all_wait, all_service, all_sojourn;
  std::vector<ClassSamples> per_class(classes.size());
  Joules dynamic_energy{0.0};
  Seconds makespan{0.0};
  std::vector<Node*> merged_nodes;
  for (auto& e : engines) {
    out.offered += e->offered;
    out.admitted += e->admitted;
    out.shed_bucket += e->shed_bucket;
    out.shed_queue += e->shed_queue;
    out.retries += e->retries;
    out.completed += e->completed;
    out.failed += e->failed;
    dynamic_energy += e->dynamic_energy();
    makespan = std::max(makespan, e->makespan());
    for (std::size_t s = 0; s < classes.size(); ++s) {
      ClassSamples& dst = per_class[s];
      ClassSamples& src = e->per_class()[s];
      dst.offered += src.offered;
      dst.admitted += src.admitted;
      dst.shed += src.shed;
      dst.retries += src.retries;
      dst.completed += src.completed;
      dst.failed += src.failed;
      dst.slo_violations += src.slo_violations;
      dst.dynamic_energy += src.dynamic_energy;
      if (engines.size() == 1) {
        dst.wait = std::move(src.wait);
        dst.service = std::move(src.service);
        dst.sojourn = std::move(src.sojourn);
      } else {
        dst.wait.insert(dst.wait.end(), src.wait.begin(), src.wait.end());
        dst.service.insert(dst.service.end(), src.service.begin(),
                           src.service.end());
        dst.sojourn.insert(dst.sojourn.end(), src.sojourn.begin(),
                           src.sojourn.end());
      }
    }
    if (engines.size() == 1) {
      all_wait = std::move(e->all_wait());
      all_service = std::move(e->all_service());
      all_sojourn = std::move(e->all_sojourn());
    } else {
      all_wait.insert(all_wait.end(), e->all_wait().begin(),
                      e->all_wait().end());
      all_service.insert(all_service.end(), e->all_service().begin(),
                         e->all_service().end());
      all_sojourn.insert(all_sojourn.end(), e->all_sojourn().begin(),
                         e->all_sojourn().end());
    }
    for (Node& n : e->nodes()) merged_nodes.push_back(&n);
  }

  out.wait = LatencySummary::from_samples(all_wait);
  out.service = LatencySummary::from_samples(all_service);
  out.sojourn = LatencySummary::from_samples(all_sojourn);

  Watts idle_floor{0.0};
  for (const Node* n : merged_nodes) idle_floor += n->idle;
  const Joules idle_energy = idle_floor * makespan;
  out.makespan = makespan;
  out.energy = idle_energy + dynamic_energy;
  if (makespan.value() > 0.0) out.average_power = out.energy / makespan;
  if (out.completed > 0)
    out.energy_per_request = out.energy / static_cast<double>(out.completed);

  for (std::size_t s = 0; s < classes.size(); ++s) {
    ClassStats st;
    st.name = classes[s].workload.name;
    st.slo = classes[s].slo;
    ClassSamples& cs = per_class[s];
    st.offered = cs.offered;
    st.admitted = cs.admitted;
    st.shed = cs.shed;
    st.retries = cs.retries;
    st.completed = cs.completed;
    st.failed = cs.failed;
    st.slo_violations = cs.slo_violations;
    st.wait = LatencySummary::from_samples(cs.wait);
    st.service = LatencySummary::from_samples(cs.service);
    st.sojourn = LatencySummary::from_samples(cs.sojourn);
    if (cs.completed > 0 && out.completed > 0) {
      // Idle energy attributed by completion share, dynamic exactly.
      const Joules idle_share =
          idle_energy * (static_cast<double>(cs.completed) /
                         static_cast<double>(out.completed));
      st.energy_per_request = (idle_share + cs.dynamic_energy) /
                              static_cast<double>(cs.completed);
    }
    out.classes.push_back(std::move(st));
  }

  // Per node type (dispatch-result convention: busy fraction is averaged
  // over the nodes of the type).
  for (const Node* n : merged_nodes) {
    auto it = std::find_if(
        out.nodes.begin(), out.nodes.end(),
        [&](const cluster::NodeLoad& l) { return l.node_name == n->type; });
    if (it == out.nodes.end()) {
      out.nodes.push_back(cluster::NodeLoad{n->type, 0, 0.0});
      it = out.nodes.end() - 1;
    }
    it->jobs_served += n->served;
    it->busy_fraction += n->busy_time.value();
  }
  for (auto& l : out.nodes) {
    double count = 0;
    for (const Node* n : merged_nodes)
      if (n->type == l.node_name) count += 1.0;
    if (makespan.value() > 0.0)
      l.busy_fraction /= std::max(1.0, count) * makespan.value();
  }
  return out;
}

JsonValue TrafficResult::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("schema_version", JsonValue::number(std::int64_t{1}));
  o.set("arrival_process", JsonValue::string(arrival_process));
  // Emitted only for sharded runs: the single-shard document stays
  // byte-identical with pre-sharding releases.
  if (shards > 1)
    o.set("shards", JsonValue::number(static_cast<std::int64_t>(shards)));
  o.set("offered", JsonValue::number(static_cast<std::int64_t>(offered)));
  o.set("admitted", JsonValue::number(static_cast<std::int64_t>(admitted)));
  o.set("shed_bucket",
        JsonValue::number(static_cast<std::int64_t>(shed_bucket)));
  o.set("shed_queue",
        JsonValue::number(static_cast<std::int64_t>(shed_queue)));
  o.set("retries", JsonValue::number(static_cast<std::int64_t>(retries)));
  o.set("completed",
        JsonValue::number(static_cast<std::int64_t>(completed)));
  o.set("failed", JsonValue::number(static_cast<std::int64_t>(failed)));
  o.set("makespan_s", JsonValue::number(makespan.value()));
  o.set("wait", wait.to_json());
  o.set("service", service.to_json());
  o.set("sojourn", sojourn.to_json());
  o.set("energy_j", JsonValue::number(energy.value()));
  o.set("average_power_w", JsonValue::number(average_power.value()));
  o.set("energy_per_request_j",
        JsonValue::number(energy_per_request.value()));
  JsonValue cls = JsonValue::array();
  for (const auto& c : classes) cls.push(c.to_json());
  o.set("classes", std::move(cls));
  JsonValue nds = JsonValue::array();
  for (const auto& n : nodes) {
    JsonValue nd = JsonValue::object();
    nd.set("node", JsonValue::string(n.node_name));
    nd.set("requests",
           JsonValue::number(static_cast<std::int64_t>(n.jobs_served)));
    nd.set("busy_fraction", JsonValue::number(n.busy_fraction));
    nds.push(std::move(nd));
  }
  o.set("nodes", std::move(nds));
  return o;
}

}  // namespace hcep::traffic
