#include "hcep/traffic/simulate.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <memory>
#include <utility>

#include "hcep/config/operating_points.hpp"
#include "hcep/config/space.hpp"
#include "hcep/control/controller.hpp"
#include "hcep/des/sharded.hpp"
#include "hcep/des/simulator.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"
#include "hcep/workload/node_ops.hpp"

namespace hcep::traffic {

namespace {

/// One physical node: per-class service/dynamic-power tables plus live
/// queue state (same materialization as cluster::simulate_dispatch).
struct Node {
  std::string type;
  std::vector<Seconds> service;  ///< indexed by class
  std::vector<Watts> dynamic;    ///< extra power while serving, per class
  Watts idle{};
  std::uint64_t queued = 0;
  Seconds free_at{};
  std::uint64_t served = 0;
  Seconds busy_time{};
  // --- closed-loop state; meaningful only under a controller ---
  std::uint32_t type_ord = 0;  ///< index into the run's TypePoints tables
  std::uint32_t point = 0;     ///< current operating-point index
  control::PowerState pstate = control::PowerState::kActive;
  Seconds sleep_since{};   ///< start of the current sleep interval
  Seconds window_busy{};   ///< busy time credited since the last tick
  Watts sleep_power{};     ///< draw while parked
  /// Dispatch-time (service, dynamic power) of each in-flight request,
  /// FIFO — finishes occur in dispatch order because free_at is strictly
  /// increasing. Populated only under a controller: an operating-point
  /// change mid-flight moves the node's tables, but the in-flight
  /// request's terms are fixed at dispatch (Actuator contract), and the
  /// energy ledger must charge exactly what the power trace recorded.
  std::deque<std::pair<Seconds, Watts>> inflight;
};

std::vector<Node> materialize_nodes(const model::ClusterSpec& cluster,
                                    const std::vector<TrafficClass>& classes) {
  std::vector<Node> nodes;
  for (const auto& g : cluster.groups) {
    if (g.count == 0) continue;
    std::vector<Seconds> service;
    std::vector<Watts> dynamic;
    for (const auto& c : classes) {
      require(c.workload.has_node(g.spec.name),
              "simulate_traffic: workload '" + c.workload.name +
                  "' lacks demand for '" + g.spec.name + "'");
      const auto& demand = c.workload.demand_for(g.spec.name);
      const double rate =
          workload::unit_throughput(demand, g.spec, g.cores(), g.freq());
      service.push_back(Seconds{c.workload.units_per_job / rate});
      const Watts busy = workload::busy_power(
          demand, g.spec, g.cores(), g.freq(),
          c.workload.power_scale_for(g.spec.name));
      dynamic.push_back(busy - g.spec.power.idle);
    }
    for (unsigned i = 0; i < g.count; ++i) {
      nodes.push_back(Node{.type = g.spec.name,
                           .service = service,
                           .dynamic = dynamic,
                           .idle = g.spec.power.idle,
                           .queued = 0,
                           .free_at = Seconds{0.0},
                           .served = 0,
                           .busy_time = Seconds{0.0},
                           .inflight = {}});
    }
  }
  require(!nodes.empty(), "simulate_traffic: empty cluster");
  return nodes;
}

/// Per-(node type) operating-point tables for closed-loop runs: one
/// entry per present NodeGroup, with the group's full DVFS ladder at its
/// configured core count (the configured frequency is inserted when it
/// is not a ladder step). Service and dynamic-power values come from
/// config::OperatingPointTable — the same memoized primitives the
/// offline sweeps use — so the entry at `configured` is bit-identical to
/// what materialize_nodes computes directly.
struct TypePoints {
  std::vector<config::OperatingPoint> points;  ///< ascending frequency
  std::uint32_t configured = 0;  ///< index of the group's (cores, freq)
  Watts idle{};
  std::vector<std::vector<Seconds>> service;  ///< [point][class]
  std::vector<std::vector<Watts>> dynamic;    ///< [point][class]
  std::vector<Watts> busy_worst;     ///< idle + max per-class dynamic
  std::vector<Seconds> mean_service; ///< class-weight-averaged
  std::vector<double> rate;          ///< requests/s = 1 / mean_service
};

std::vector<TypePoints> materialize_point_tables(
    const model::ClusterSpec& cluster,
    const std::vector<TrafficClass>& classes) {
  double weight_total = 0.0;
  for (const auto& c : classes) weight_total += c.weight;

  std::vector<TypePoints> tables;
  std::vector<config::TypeOptions> type_options;
  for (const auto& g : cluster.groups) {
    if (g.count == 0) continue;
    TypePoints t;
    t.idle = g.spec.power.idle;
    bool have_configured = false;
    for (const Hertz f : g.spec.dvfs.steps()) {
      if (!have_configured && g.freq().value() < f.value()) {
        t.configured = static_cast<std::uint32_t>(t.points.size());
        t.points.push_back({g.cores(), g.freq()});
        have_configured = true;
      }
      if (f.value() == g.freq().value()) {
        t.configured = static_cast<std::uint32_t>(t.points.size());
        have_configured = true;
      }
      t.points.push_back({g.cores(), f});
    }
    if (!have_configured) {
      t.configured = static_cast<std::uint32_t>(t.points.size());
      t.points.push_back({g.cores(), g.freq()});
    }
    config::TypeOptions opts;
    opts.spec = g.spec;
    opts.max_nodes = 1;
    opts.operating_points = t.points;
    type_options.push_back(std::move(opts));
    tables.push_back(std::move(t));
  }

  const config::ConfigSpace space(std::move(type_options));
  for (std::size_t ti = 0; ti < tables.size(); ++ti) {
    TypePoints& t = tables[ti];
    const std::size_t np = t.points.size();
    t.service.assign(np, std::vector<Seconds>(classes.size()));
    t.dynamic.assign(np, std::vector<Watts>(classes.size()));
    t.busy_worst.assign(np, Watts{0.0});
    t.mean_service.assign(np, Seconds{0.0});
    t.rate.assign(np, 0.0);
  }
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const config::OperatingPointTable table(space, classes[c].workload);
    const double share = classes[c].weight / weight_total;
    for (std::size_t ti = 0; ti < tables.size(); ++ti) {
      TypePoints& t = tables[ti];
      for (std::size_t p = 0; p < t.points.size(); ++p) {
        const config::OperatingPointEntry& e = table.entry(ti, p);
        const Seconds service{classes[c].workload.units_per_job /
                              e.throughput};
        t.service[p][c] = service;
        t.dynamic[p][c] = e.busy_power - t.idle;
        t.busy_worst[p] = std::max(t.busy_worst[p], t.dynamic[p][c]);
        t.mean_service[p] += service * share;
      }
    }
  }
  for (TypePoints& t : tables) {
    for (std::size_t p = 0; p < t.points.size(); ++p) {
      t.busy_worst[p] += t.idle;
      if (t.mean_service[p].value() > 0.0)
        t.rate[p] = 1.0 / t.mean_service[p].value();
    }
  }
  return tables;
}

/// Per-class normalized cumulative weight distribution.
std::vector<double> cumulative_weights(
    const std::vector<TrafficClass>& classes) {
  double total = 0.0;
  for (const auto& c : classes) {
    require(c.weight > 0.0, "simulate_traffic: non-positive class weight");
    total += c.weight;
  }
  std::vector<double> cumulative;
  double acc = 0.0;
  for (const auto& c : classes) {
    acc += c.weight / total;
    cumulative.push_back(acc);
  }
  cumulative.back() = 1.0;
  return cumulative;
}

struct ClassSamples {
  std::vector<double> wait, service, sojourn;
  std::uint64_t offered = 0, admitted = 0, shed = 0, retries = 0,
                completed = 0, failed = 0, slo_violations = 0;
  Joules dynamic_energy{};
};

/// One in-flight request attempt; retries carry the same first_arrival
/// and arrival index. Sized so the hot-path callback captures below
/// stay within des::Callback's inline buffer.
struct Request {
  std::uint32_t cls = 0;
  std::uint32_t index = 0;  ///< arrival index (record_requests join key)
  Seconds first_arrival{};
  std::uint32_t attempt = 1;
};
static_assert(sizeof(Request) <= 24, "Request must stay callback-inline");

/// The per-event-loop simulation engine: one per shard (single-shard runs
/// use exactly one over all nodes, preserving the seed code path's event
/// and RNG order byte-for-byte).
///
/// Every callback this engine schedules captures at most {Engine*, node
/// index, Request, Seconds} — 48 bytes — so no event allocates
/// (static_asserted at each schedule site against
/// des::Callback::stores_inline).
///
/// With a controller installed (options.control.enabled()) the engine
/// doubles as the control::Actuator: ticks are scheduled as ordinary DES
/// events, node sleep/wake and operating-point changes mutate the live
/// node tables, and every control branch is guarded by `copts_` so the
/// open-loop path executes the seed instruction stream unchanged.
class Engine final : public control::Actuator {
 public:
  Engine(des::Simulator& sim, const std::vector<TrafficClass>& classes,
         const std::vector<double>& cumulative,
         const TrafficOptions& options, std::vector<Node> nodes,
         std::uint64_t request_budget, Rng rng, bool tracing,
         const std::vector<TypePoints>* tables, double shard_share,
         const std::vector<obs::stream::NodeClassInfo>* stream_classes,
         std::uint32_t shard_index)
      : sim_(sim),
        classes_(classes),
        cumulative_(cumulative),
        options_(options),
        nodes_(std::move(nodes)),
        request_budget_(request_budget),
        rng_(rng),
        tracing_(tracing),
        per_class_(classes.size()),
        shard_index_(shard_index),
        shard_count_(static_cast<std::uint32_t>(options.shards)) {
    if (options.admission.bucket_enabled()) {
      const double split = static_cast<double>(options.shards);
      bucket_ = std::make_unique<TokenBucket>(
          options.admission.bucket_rate_per_s / split,
          std::max(1.0, options.admission.bucket_burst / split));
    }
    all_wait_.reserve(request_budget);
    all_service_.reserve(request_budget);
    all_sojourn_.reserve(request_budget);
    if (options.record_requests) records_.reserve(request_budget);
#if HCEP_OBS
    o_ = obs::current();
    if (o_ != nullptr) {
      offered_m_ = o_->metrics.counter("traffic.offered");
      admitted_m_ = o_->metrics.counter("traffic.admitted");
      shed_m_ = o_->metrics.counter("traffic.shed");
      retries_m_ = o_->metrics.counter("traffic.retries");
      completed_m_ = o_->metrics.counter("traffic.completed");
      failed_m_ = o_->metrics.counter("traffic.failed");
      sojourn_m_ = o_->metrics.histogram(
          "traffic.sojourn_s", {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                                0.25, 0.5, 1.0, 2.5, 5.0, 10.0});
      cat_s_ = o_->tracer.intern("traffic");
      request_s_ = o_->tracer.intern("request");
      wait_key_s_ = o_->tracer.intern("wait_s");
      inflight_s_ = o_->tracer.intern("traffic_inflight");
      shed_cat_s_ = o_->tracer.intern("shed");
      bucket_s_ = o_->tracer.intern("bucket");
      queue_s_ = o_->tracer.intern("queue_depth");
    }
#endif
    if (options_.control.enabled()) {
      copts_ = &options_.control;
      tables_ = tables;
      shard_share_ = shard_share;
      controller_ = copts_->controller->clone();
      dispatchable_ = nodes_.size();
      window_shed_.assign(classes.size(), 0);
      window_sojourns_.resize(classes.size());
#if HCEP_OBS
      if (o_ != nullptr) {
        ctrl_ticks_m_ = o_->metrics.counter("control.ticks");
        ctrl_sleeps_m_ = o_->metrics.counter("control.sleeps");
        ctrl_wakes_m_ = o_->metrics.counter("control.wakes");
        ctrl_points_m_ = o_->metrics.counter("control.point_changes");
        ctrl_active_g_ = o_->metrics.gauge("control.active_nodes");
        ctrl_power_g_ = o_->metrics.gauge("control.worst_case_power_w");
        ctrl_cat_s_ = o_->tracer.intern("control");
        tick_s_ = o_->tracer.intern("tick");
        active_track_s_ = o_->tracer.intern("control_active_nodes");
        power_track_s_ = o_->tracer.intern("control_rack_power_w");
      }
#endif
    }
    // Streaming telemetry: a per-shard Collector fed by the event hooks
    // below. Purely observational (no RNG draws, no DES events), so the
    // simulation outcome is byte-identical with it on or off.
    if (options_.stream.enabled() && stream_classes != nullptr) {
      std::vector<obs::stream::NodeClassInfo> cls = *stream_classes;
      for (auto& c : cls) c.nodes = 0;
      std::vector<Watts> floors(cls.size(), Watts{0.0});
      for (const Node& n : nodes_) {
        ++cls[n.type_ord].nodes;
        floors[n.type_ord] += n.idle;
      }
      stream_ = std::make_unique<obs::stream::Collector>(
          options_.stream, std::move(cls), std::move(floors));
    }
    if (copts_ != nullptr && copts_->flight_recorder) {
      frec_ = std::make_unique<obs::stream::FlightRecorder>(
          copts_->flight_capacity);
    }
  }

  /// Schedules the tick chain (t = 0 first); no-op without a controller.
  /// The chain self-terminates once arrivals are exhausted and the
  /// system has drained, so sim.run() still completes.
  void start_control() {
    if (copts_ == nullptr) return;
    auto cb = [this]() { periodic_tick(); };
    static_assert(des::Callback::stores_inline<decltype(cb)>);
    sim_.schedule_at(Seconds{0.0}, std::move(cb));
  }

  /// Open-loop arrival pump (single-shard path): the generator is
  /// sampled inside the event loop, exactly like the seed code.
  void start_pump(const ArrivalProcess& arrivals) {
    gen_ = arrivals.clone();
    const Seconds first = gen_->next(Seconds{0.0}, rng_);
    if (first.value() < std::numeric_limits<double>::infinity())
      schedule_pump(first);
    else
      arrivals_done_ = true;
  }

  /// Pre-assigned arrivals (sharded path): (time, class, global index)
  /// triples generated up front from the shared arrival stream.
  void preload(const std::vector<Arrival>& arrivals,
               const std::vector<std::uint32_t>& indices) {
    preload_total_ = arrivals.size();
    if (preload_total_ == 0) arrivals_done_ = true;
    for (std::size_t k = 0; k < arrivals.size(); ++k) {
      auto cb = [this, cls = arrivals[k].cls, idx = indices[k]]() {
        admit_arrival(cls, idx);
      };
      static_assert(des::Callback::stores_inline<decltype(cb)>);
      sim_.schedule_at(arrivals[k].t, std::move(cb));
    }
  }

  /// Assigned-arrival replay (fed path): a time-sorted vector owned by
  /// the caller, scheduled lazily — each firing admits one arrival and
  /// schedules the next, mirroring the generator pump's event cost.
  void start_assigned(const std::vector<Arrival>& arrivals) {
    assigned_ = &arrivals;
    if (arrivals.empty()) {
      arrivals_done_ = true;
      return;
    }
    schedule_assigned(arrivals.front().t);
  }

  // ---- merged outputs ----
  std::uint64_t offered = 0, admitted = 0, shed_bucket = 0, shed_queue = 0,
                retries = 0, completed = 0, failed = 0;
  [[nodiscard]] Seconds makespan() const { return makespan_; }
  [[nodiscard]] Joules dynamic_energy() const { return dynamic_energy_; }
  [[nodiscard]] std::vector<ClassSamples>& per_class() { return per_class_; }
  [[nodiscard]] std::vector<Node>& nodes() { return nodes_; }
  [[nodiscard]] std::vector<double>& all_wait() { return all_wait_; }
  [[nodiscard]] std::vector<double>& all_service() { return all_service_; }
  [[nodiscard]] std::vector<double>& all_sojourn() { return all_sojourn_; }
  [[nodiscard]] control::ControlSummary& control_summary() { return csum_; }
  [[nodiscard]] std::vector<std::pair<double, double>>& ledger() {
    return ledger_;
  }
  [[nodiscard]] obs::stream::Collector* stream() { return stream_.get(); }
  [[nodiscard]] std::vector<RequestRecord>& records() { return records_; }

  /// Closes open sleep intervals and integrates the gating savings,
  /// clipped to the run's makespan (the idle-floor baseline the savings
  /// are deducted from only spans [0, makespan]).
  void finalize_control(Seconds makespan) {
    if (copts_ == nullptr) return;
    for (const Node& n : nodes_) {
      if (n.pstate == control::PowerState::kSleeping) {
        sleep_spans_.push_back(
            {n.sleep_since,
             Seconds{std::numeric_limits<double>::infinity()},
             n.idle - n.sleep_power});
      }
    }
    Joules savings{0.0};
    for (const SleepSpan& s : sleep_spans_) {
      const double a = std::min(s.start.value(), makespan.value());
      const double b = std::min(s.end.value(), makespan.value());
      if (b > a) savings += s.delta * Seconds{b - a};
    }
    csum_.gating_savings = savings;
    csum_.enabled = true;
    csum_.controller = controller_->name();
    if (frec_ != nullptr) csum_.flight = std::move(*frec_);
  }

 private:
  void schedule_pump(Seconds t) {
    auto cb = [this]() { pump_arrival(); };
    static_assert(des::Callback::stores_inline<decltype(cb)>);
    sim_.schedule_at(t, std::move(cb));
  }

  /// One pump firing: admit an arrival (class drawn here) and schedule
  /// the next one. Mirrors the seed code's draw order: class coin, then
  /// attempt (which may draw for node picks), then the generator.
  void pump_arrival() {
    if (offered >= request_budget_) {
      arrivals_done_ = true;
      return;
    }
    std::size_t cls = 0;
    if (classes_.size() > 1) {
      const double coin = rng_.uniform01();
      while (cls + 1 < classes_.size() && coin > cumulative_[cls]) ++cls;
    }
    arrive(cls, static_cast<std::uint32_t>(offered));
    const Seconds next = gen_->next(sim_.now(), rng_);
    if (next.value() < std::numeric_limits<double>::infinity())
      schedule_pump(next);
    else
      arrivals_done_ = true;
  }

  void schedule_assigned(Seconds t) {
    auto cb = [this]() { assigned_arrival(); };
    static_assert(des::Callback::stores_inline<decltype(cb)>);
    sim_.schedule_at(t, std::move(cb));
  }

  /// One assigned-arrival firing: admit the arrival at the cursor and
  /// lazily schedule the next one (times are sorted ascending, so the
  /// next event is never in the past).
  void assigned_arrival() {
    const std::size_t k = assigned_cursor_++;
    if (assigned_cursor_ >= assigned_->size()) arrivals_done_ = true;
    arrive((*assigned_)[k].cls, static_cast<std::uint32_t>(k));
    if (assigned_cursor_ < assigned_->size())
      schedule_assigned((*assigned_)[assigned_cursor_].t);
  }

  /// Preloaded-arrival firing (class was drawn at generation time).
  void admit_arrival(std::size_t cls, std::uint32_t index) {
    ++preload_fired_;
    if (preload_fired_ >= preload_total_) arrivals_done_ = true;
    arrive(cls, index);
  }

  void arrive(std::size_t cls, std::uint32_t index) {
    ++offered;
    if (copts_ != nullptr) ++window_arrivals_;
    Request req;
    req.cls = static_cast<std::uint32_t>(cls);
    req.index = index;
    req.first_arrival = sim_.now();
    ++per_class_[cls].offered;
    ++inflight_;
#if HCEP_OBS
    if (o_ != nullptr) o_->metrics.add(offered_m_);
#endif
    if (stream_ != nullptr) stream_->on_arrival(sim_.now());
    note_inflight();
    attempt(req);
  }

  void note_inflight() {
#if HCEP_OBS
    if (o_ != nullptr && tracing_) {
      o_->tracer.counter(sim_.now().value(), cat_s_, inflight_s_,
                         static_cast<double>(inflight_));
    }
#endif
  }

  // --------------------------------------------------------------- control
  [[nodiscard]] bool work_remaining() const {
    return !arrivals_done_ || inflight_ > 0;
  }

  /// Fixed-interval tick chain; stops once the run has drained so the
  /// event queue empties and sim.run() returns.
  void periodic_tick() {
    if (!work_remaining()) return;
    run_tick(/*event=*/false);
    auto cb = [this]() { periodic_tick(); };
    static_assert(des::Callback::stores_inline<decltype(cb)>);
    sim_.schedule_at(sim_.now() + copts_->period, std::move(cb));
  }

  /// Schedules a near-immediate extra tick on congestion signals (queue
  /// sheds), rate-limited by min_event_spacing.
  void request_event_tick() {
    if (copts_ == nullptr || !copts_->event_triggered || event_tick_pending_)
      return;
    if (sim_.now() - last_tick_ < copts_->min_event_spacing) return;
    event_tick_pending_ = true;
    auto cb = [this]() {
      event_tick_pending_ = false;
      if (work_remaining()) run_tick(/*event=*/true);
    };
    static_assert(des::Callback::stores_inline<decltype(cb)>);
    sim_.schedule_at(sim_.now(), std::move(cb));
  }

  /// One controller tick: snapshot fleet + class-window feedback, invoke
  /// the policy (this engine is the Actuator), reset the window. Draws
  /// no RNG values and touches no request-visible state itself, so a
  /// controller that does not actuate leaves the run byte-identical.
  void run_tick(bool event) {
    const Seconds now = sim_.now();
    const Seconds window = now - last_tick_;
    status_buf_.resize(nodes_.size());
    Watts worst{0.0};
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const Node& n = nodes_[i];
      control::NodeStatus& st = status_buf_[i];
      st.type = n.type_ord;
      st.point = n.point;
      st.state = n.pstate;
      st.queued = n.queued;
      st.backlog = std::max(Seconds{0.0}, n.free_at - now);
      st.utilization =
          window.value() > 0.0
              ? std::min(1.0, n.window_busy.value() / window.value())
              : 0.0;
      st.idle_power = n.idle;
      st.sleep_power = n.sleep_power;
      worst += n.pstate == control::PowerState::kSleeping
                   ? n.sleep_power
                   : (*tables_)[n.type_ord].busy_worst[n.point];
    }
    class_buf_.resize(classes_.size());
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      control::ClassFeedback& fb = class_buf_[c];
      fb.slo_latency = classes_[c].slo.enabled() ? classes_[c].slo.latency
                                                 : Seconds{0.0};
      std::vector<double>& sj = window_sojourns_[c];
      fb.window_completed = sj.size();
      fb.window_shed = window_shed_[c];
      fb.window_p99 = Seconds{0.0};
      if (!sj.empty()) {
        std::sort(sj.begin(), sj.end());
        const std::size_t idx = static_cast<std::size_t>(
            0.99 * static_cast<double>(sj.size() - 1) + 0.5);
        fb.window_p99 = Seconds{sj[idx]};
      }
    }

    control::TickContext ctx;
    ctx.now = now;
    ctx.period = copts_->period;
    ctx.window_arrivals_per_s =
        window.value() > 0.0
            ? static_cast<double>(window_arrivals_) / window.value()
            : 0.0;
    ctx.nodes = status_buf_.data();
    ctx.num_nodes = status_buf_.size();
    ctx.classes = class_buf_.data();
    ctx.num_classes = class_buf_.size();
    ctx.worst_case_power = worst;
    ctx.shard_share = shard_share_;

    // Flight recorder: close the loop on the previous record (what
    // actually happened over the window that just ended is this tick's
    // pre-actuation observation), then capture action-count baselines.
    std::uint64_t window_completed = 0;
    Seconds window_p99{0.0};
    if (frec_ != nullptr) {
      for (const control::ClassFeedback& fb : class_buf_) {
        window_completed += fb.window_completed;
        window_p99 = std::max(window_p99, fb.window_p99);
      }
      obs::stream::DecisionRecord* prev = frec_->last();
      if (prev != nullptr && !prev->realized_valid) {
        prev->realized_valid = true;
        prev->realized_power = worst;
        prev->realized_rate_per_s =
            window.value() > 0.0
                ? static_cast<double>(window_completed) / window.value()
                : 0.0;
        prev->realized_p99 = window_p99;
      }
    }
    const std::uint64_t sleeps0 = csum_.sleeps;
    const std::uint64_t wakes0 = csum_.wakes;
    const std::uint64_t points0 = csum_.point_changes;

#if HCEP_OBS
    if (o_ != nullptr) {
      o_->metrics.add(ctrl_ticks_m_);
      if (tracing_) o_->tracer.begin(now.value(), ctrl_cat_s_, tick_s_);
    }
#endif
    controller_->tick(ctx, *this);
#if HCEP_OBS
    if (o_ != nullptr) {
      o_->metrics.set(ctrl_active_g_, static_cast<double>(dispatchable_));
      o_->metrics.set(ctrl_power_g_, worst.value());
      if (tracing_) {
        o_->tracer.counter(now.value(), ctrl_cat_s_, active_track_s_,
                           static_cast<double>(dispatchable_));
        o_->tracer.counter(now.value(), ctrl_cat_s_, power_track_s_,
                           worst.value());
        o_->tracer.end(now.value(), ctrl_cat_s_, tick_s_);
      }
    }
#endif
    if (frec_ != nullptr) {
      obs::stream::DecisionRecord rec;
      rec.tick = csum_.ticks;
      rec.shard = shard_index_;
      rec.event = event;
      rec.t = now;
      rec.window = window;
      rec.arrivals_per_s = ctx.window_arrivals_per_s;
      rec.observed_power = worst;
      for (const control::NodeStatus& st : status_buf_) {
        rec.queued += st.queued;
        switch (st.state) {
          case control::PowerState::kActive: ++rec.active; break;
          case control::PowerState::kDraining: ++rec.draining; break;
          case control::PowerState::kSleeping: ++rec.sleeping; break;
        }
      }
      rec.window_completed = window_completed;
      for (const control::ClassFeedback& fb : class_buf_) {
        rec.window_shed += fb.window_shed;
      }
      rec.window_p99 = window_p99;
      rec.sleeps = static_cast<std::uint32_t>(csum_.sleeps - sleeps0);
      rec.wakes = static_cast<std::uint32_t>(csum_.wakes - wakes0);
      rec.point_changes =
          static_cast<std::uint32_t>(csum_.point_changes - points0);
      rec.transitions = std::move(tick_transitions_);
      tick_transitions_.clear();
      // Predicted effect of the post-actuation fleet: conservative draw
      // plus the aggregate service rate of nodes able to take work.
      Watts predicted{0.0};
      double rate = 0.0;
      for (const Node& n : nodes_) {
        if (n.pstate == control::PowerState::kSleeping) {
          predicted += n.sleep_power;
        } else {
          predicted += (*tables_)[n.type_ord].busy_worst[n.point];
          if (n.pstate == control::PowerState::kActive)
            rate += (*tables_)[n.type_ord].rate[n.point];
        }
      }
      rec.predicted_power = predicted;
      rec.predicted_rate_per_s = rate;
      frec_->append(std::move(rec));
    }
    for (Node& n : nodes_) n.window_busy = Seconds{0.0};
    window_arrivals_ = 0;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      window_sojourns_[c].clear();
      window_shed_[c] = 0;
    }
    last_tick_ = now;
    ++csum_.ticks;
    if (event) ++csum_.event_ticks;
  }

  void note_power(Seconds t, Watts delta) {
    if (copts_->record_power_trace)
      ledger_.emplace_back(t.value(), delta.value());
  }

  /// Global node index of a shard-local one (round-robin partition:
  /// shard-local slot k holds global node k * shards + shard).
  [[nodiscard]] std::uint32_t global_node(std::size_t i) const {
    return static_cast<std::uint32_t>(i) * shard_count_ + shard_index_;
  }

  void record_transition(std::size_t i,
                         obs::stream::DecisionRecord::Transition::Kind kind,
                         std::uint32_t from, std::uint32_t to) {
    if (frec_ == nullptr) return;
    tick_transitions_.push_back(
        obs::stream::DecisionRecord::Transition{global_node(i), kind, from,
                                                to});
  }

  // ---- control::Actuator ----
  bool sleep_node(std::size_t i) override {
    Node& n = nodes_[i];
    if (n.pstate != control::PowerState::kActive) return false;
    if (dispatchable_ <= 1) return false;  // never strand the dispatcher
    const Seconds now = sim_.now();
    --dispatchable_;
    ++csum_.sleeps;
#if HCEP_OBS
    if (o_ != nullptr) o_->metrics.add(ctrl_sleeps_m_);
#endif
    if (n.queued == 0 && n.free_at <= now) {
      n.pstate = control::PowerState::kSleeping;
      n.sleep_since = now;
      note_power(now, n.sleep_power - n.idle);
      if (stream_ != nullptr)
        stream_->on_floor_delta(n.type_ord, now, n.sleep_power - n.idle);
    } else {
      n.pstate = control::PowerState::kDraining;  // sleeps when it empties
    }
    record_transition(i,
                      n.pstate == control::PowerState::kSleeping
                          ? obs::stream::DecisionRecord::Transition::Kind::kSleep
                          : obs::stream::DecisionRecord::Transition::Kind::kDrain,
                      static_cast<std::uint32_t>(control::PowerState::kActive),
                      static_cast<std::uint32_t>(n.pstate));
    return true;
  }

  bool wake_node(std::size_t i) override {
    Node& n = nodes_[i];
    if (n.pstate == control::PowerState::kActive) return false;
    const control::PowerState prev = n.pstate;
    const Seconds now = sim_.now();
    if (n.pstate == control::PowerState::kSleeping) {
      sleep_spans_.push_back({n.sleep_since, now, n.idle - n.sleep_power});
      note_power(now, n.idle - n.sleep_power);
      csum_.wake_energy += copts_->wake_energy;
      ++csum_.wakes;
#if HCEP_OBS
      if (o_ != nullptr) o_->metrics.add(ctrl_wakes_m_);
#endif
      if (stream_ != nullptr) {
        stream_->on_floor_delta(n.type_ord, now, n.idle - n.sleep_power);
        stream_->on_wake_energy(n.type_ord, now, copts_->wake_energy);
      }
      // Boot delay: powered and drawing idle, serving only afterwards.
      n.free_at = std::max(n.free_at, now + copts_->wake_delay);
    }
    n.pstate = control::PowerState::kActive;
    ++dispatchable_;
    record_transition(i, obs::stream::DecisionRecord::Transition::Kind::kWake,
                      static_cast<std::uint32_t>(prev),
                      static_cast<std::uint32_t>(control::PowerState::kActive));
    return true;
  }

  bool set_operating_point(std::size_t i, std::uint32_t p) override {
    Node& n = nodes_[i];
    const TypePoints& t = (*tables_)[n.type_ord];
    if (p >= t.points.size() || p == n.point) return false;
    record_transition(i, obs::stream::DecisionRecord::Transition::Kind::kPoint,
                      n.point, p);
    n.point = p;
    // In-flight service times are already fixed; future dispatches read
    // the new tables. Copy-assign reuses capacity (equal sizes).
    n.service = t.service[p];
    n.dynamic = t.dynamic[p];
    ++csum_.point_changes;
#if HCEP_OBS
    if (o_ != nullptr) o_->metrics.add(ctrl_points_m_);
#endif
    return true;
  }

  [[nodiscard]] std::size_t num_points(std::uint32_t type) const override {
    return (*tables_)[type].points.size();
  }
  [[nodiscard]] Watts busy_power(std::size_t node,
                                 std::uint32_t p) const override {
    return (*tables_)[nodes_[node].type_ord].busy_worst[p];
  }
  [[nodiscard]] Seconds mean_service(std::size_t node,
                                     std::uint32_t p) const override {
    return (*tables_)[nodes_[node].type_ord].mean_service[p];
  }
  [[nodiscard]] double service_rate(std::size_t node,
                                    std::uint32_t p) const override {
    return (*tables_)[nodes_[node].type_ord].rate[p];
  }

  /// Availability-aware dispatch over non-sleeping, non-draining nodes
  /// (same policy semantics as pick_node, restricted to the active set;
  /// dispatchable_ >= 1 is an actuator invariant so this always finds
  /// one).
  std::size_t pick_available_node(std::size_t cls) {
    const auto active = [&](std::size_t i) {
      return nodes_[i].pstate == control::PowerState::kActive;
    };
    switch (options_.policy) {
      case cluster::DispatchPolicy::kRoundRobin: {
        std::size_t i = rr_cursor_;
        while (!active(i)) i = (i + 1) % nodes_.size();
        rr_cursor_ = (i + 1) % nodes_.size();
        return i;
      }
      case cluster::DispatchPolicy::kRandom: {
        std::uint64_t k = rng_.uniform_int(dispatchable_);
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
          if (!active(i)) continue;
          if (k == 0) return i;
          --k;
        }
        break;
      }
      case cluster::DispatchPolicy::kJoinShortestQueue: {
        std::size_t best = nodes_.size();
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
          if (!active(i)) continue;
          if (best == nodes_.size() || nodes_[i].queued < nodes_[best].queued ||
              (nodes_[i].queued == nodes_[best].queued &&
               nodes_[i].service[cls] < nodes_[best].service[cls])) {
            best = i;
          }
        }
        if (best < nodes_.size()) return best;
        break;
      }
      case cluster::DispatchPolicy::kFastestFirst: {
        std::size_t best = nodes_.size();
        double best_eta = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
          if (!active(i)) continue;
          const double backlog =
              std::max(0.0, (nodes_[i].free_at - sim_.now()).value());
          const double eta = backlog + nodes_[i].service[cls].value();
          if (eta < best_eta) {
            best_eta = eta;
            best = i;
          }
        }
        if (best < nodes_.size()) return best;
        break;
      }
      case cluster::DispatchPolicy::kLeastEnergy: {
        std::size_t best = nodes_.size();
        double best_score = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
          if (!active(i)) continue;
          const double joules = nodes_[i].dynamic[cls].value() *
                                nodes_[i].service[cls].value();
          const double backlog =
              std::max(0.0, (nodes_[i].free_at - sim_.now()).value());
          const double score = joules + backlog * 1e-3;
          if (score < best_score) {
            best_score = score;
            best = i;
          }
        }
        if (best < nodes_.size()) return best;
        break;
      }
    }
    throw PreconditionError("simulate_traffic: no dispatchable node");
  }

  /// Dispatch-policy node choice, shared with cluster::simulate_dispatch
  /// semantics (over this engine's node subset).
  std::size_t pick_node(std::size_t cls) {
    if (copts_ != nullptr && dispatchable_ < nodes_.size())
      return pick_available_node(cls);
    switch (options_.policy) {
      case cluster::DispatchPolicy::kRoundRobin: {
        const std::size_t i = rr_cursor_;
        rr_cursor_ = (rr_cursor_ + 1) % nodes_.size();
        return i;
      }
      case cluster::DispatchPolicy::kRandom:
        return static_cast<std::size_t>(rng_.uniform_int(nodes_.size()));
      case cluster::DispatchPolicy::kJoinShortestQueue: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < nodes_.size(); ++i) {
          if (nodes_[i].queued < nodes_[best].queued ||
              (nodes_[i].queued == nodes_[best].queued &&
               nodes_[i].service[cls] < nodes_[best].service[cls])) {
            best = i;
          }
        }
        return best;
      }
      case cluster::DispatchPolicy::kFastestFirst: {
        std::size_t best = 0;
        double best_eta = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
          const double backlog =
              std::max(0.0, (nodes_[i].free_at - sim_.now()).value());
          const double eta = backlog + nodes_[i].service[cls].value();
          if (eta < best_eta) {
            best_eta = eta;
            best = i;
          }
        }
        return best;
      }
      case cluster::DispatchPolicy::kLeastEnergy: {
        std::size_t best = 0;
        double best_score = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
          const double joules = nodes_[i].dynamic[cls].value() *
                                nodes_[i].service[cls].value();
          const double backlog =
              std::max(0.0, (nodes_[i].free_at - sim_.now()).value());
          const double score = joules + backlog * 1e-3;
          if (score < best_score) {
            best_score = score;
            best = i;
          }
        }
        return best;
      }
    }
    throw PreconditionError("simulate_traffic: unknown policy");
  }

  void attempt(Request req) {
    const Seconds now = sim_.now();

    if (bucket_ && !bucket_->try_acquire(now)) {
      ++shed_bucket;
      ++per_class_[req.cls].shed;
      if (copts_ != nullptr) ++window_shed_[req.cls];
#if HCEP_OBS
      if (o_ != nullptr) {
        o_->metrics.add(shed_m_);
        if (tracing_)
          o_->tracer.instant(now.value(), shed_cat_s_, bucket_s_);
      }
#endif
      if (stream_ != nullptr) stream_->on_shed(now);
      reject(req);
      return;
    }

    const std::size_t i = pick_node(req.cls);
    if (options_.admission.shedding_enabled() &&
        nodes_[i].queued >= options_.admission.max_queue_depth) {
      ++shed_queue;
      ++per_class_[req.cls].shed;
      if (copts_ != nullptr) {
        ++window_shed_[req.cls];
        request_event_tick();  // queue shed = congestion signal
      }
#if HCEP_OBS
      if (o_ != nullptr) {
        o_->metrics.add(shed_m_);
        if (tracing_)
          o_->tracer.instant(now.value(), shed_cat_s_, queue_s_);
      }
#endif
      if (stream_ != nullptr) stream_->on_shed(now);
      reject(req);
      return;
    }

    ++admitted;
    ++per_class_[req.cls].admitted;
    Node& n = nodes_[i];
    ++n.queued;
    const Seconds start = std::max(now, n.free_at);
    const Seconds wait = start - now;
    const Seconds done = start + n.service[req.cls];
    n.free_at = done;
    if (copts_ != nullptr) {
      if (n.pstate != control::PowerState::kActive)
        csum_.all_dispatches_available = false;
      n.inflight.emplace_back(n.service[req.cls], n.dynamic[req.cls]);
      note_power(start, n.dynamic[req.cls]);
      note_power(done, n.dynamic[req.cls] * -1.0);
    }
    if (stream_ != nullptr)
      stream_->on_dispatch(n.type_ord, now, start, done, n.dynamic[req.cls]);
#if HCEP_OBS
    if (o_ != nullptr) {
      o_->metrics.add(admitted_m_);
      if (tracing_)
        o_->tracer.begin(start.value(), cat_s_, request_s_, wait_key_s_,
                         wait.value());
    }
#endif
    // The kernel hot path: {Engine*, index, Request, Seconds} is exactly
    // des::Callback's 48-byte inline budget — no allocation per event.
    auto cb = [this, i, req, wait]() { finish(i, req, wait); };
    static_assert(des::Callback::stores_inline<decltype(cb)>);
    sim_.schedule_at(done, std::move(cb));
  }

  void reject(Request req) {
    if (req.attempt < options_.retry.max_attempts) {
      ++retries;
      ++per_class_[req.cls].retries;
#if HCEP_OBS
      if (o_ != nullptr) o_->metrics.add(retries_m_);
#endif
      const Seconds delay = options_.retry.backoff_after(req.attempt);
      ++req.attempt;
      auto cb = [this, req]() { attempt(req); };
      static_assert(des::Callback::stores_inline<decltype(cb)>);
      sim_.schedule_in(delay, std::move(cb));
    } else {
      ++failed;
      ++per_class_[req.cls].failed;
      makespan_ = std::max(makespan_, sim_.now());
      --inflight_;
      if (options_.record_requests)
        records_.push_back(RequestRecord{req.index, req.cls, 1,
                                         sim_.now() - req.first_arrival});
#if HCEP_OBS
      if (o_ != nullptr) o_->metrics.add(failed_m_);
#endif
      note_inflight();
    }
  }

  void finish(std::size_t node_index, Request req, Seconds wait) {
    const std::size_t cls = req.cls;
    const Seconds first_arrival = req.first_arrival;
    Node& node = nodes_[node_index];
    --node.queued;
    ++node.served;
    // Service time and dynamic power are fixed at dispatch: under a
    // controller the node's tables may have moved since (operating-point
    // change mid-flight), so charge the dispatch-time values.
    Seconds service = node.service[cls];
    Watts dynamic = node.dynamic[cls];
    if (copts_ != nullptr) {
      service = node.inflight.front().first;
      dynamic = node.inflight.front().second;
      node.inflight.pop_front();
    }
    node.busy_time += service;
    const Joules joules = dynamic * service;
    dynamic_energy_ += joules;
    per_class_[cls].dynamic_energy += joules;

    const Seconds sojourn = sim_.now() - first_arrival;
    all_wait_.push_back(wait.value());
    all_service_.push_back(service.value());
    all_sojourn_.push_back(sojourn.value());
    per_class_[cls].wait.push_back(wait.value());
    per_class_[cls].service.push_back(service.value());
    per_class_[cls].sojourn.push_back(sojourn.value());
    ++completed;
    ++per_class_[cls].completed;
    if (options_.record_requests)
      records_.push_back(RequestRecord{req.index, req.cls, 0, sojourn});
    if (classes_[cls].slo.enabled() && sojourn > classes_[cls].slo.latency)
      ++per_class_[cls].slo_violations;
    makespan_ = std::max(makespan_, sim_.now());
    --inflight_;
    if (stream_ != nullptr)
      stream_->on_complete(node.type_ord, sim_.now(), sojourn);
    if (copts_ != nullptr) {
      node.window_busy += service;
      window_sojourns_[cls].push_back(sojourn.value());
      if (node.pstate == control::PowerState::kDraining && node.queued == 0) {
        node.pstate = control::PowerState::kSleeping;
        node.sleep_since = sim_.now();
        note_power(sim_.now(), node.sleep_power - node.idle);
        if (stream_ != nullptr) {
          stream_->on_floor_delta(node.type_ord, sim_.now(),
                                  node.sleep_power - node.idle);
        }
      }
    }
#if HCEP_OBS
    if (o_ != nullptr) {
      if (tracing_) o_->tracer.end(sim_.now().value(), cat_s_, request_s_);
      o_->metrics.add(completed_m_);
      o_->metrics.observe(sojourn_m_, sojourn.value());
    }
#endif
    note_inflight();
  }

  des::Simulator& sim_;
  const std::vector<TrafficClass>& classes_;
  const std::vector<double>& cumulative_;
  const TrafficOptions& options_;
  std::vector<Node> nodes_;
  std::uint64_t request_budget_;
  Rng rng_;
  bool tracing_;
  std::unique_ptr<ArrivalProcess> gen_;
  std::unique_ptr<TokenBucket> bucket_;
  std::size_t rr_cursor_ = 0;
  std::uint64_t inflight_ = 0;
  Seconds makespan_{};
  Joules dynamic_energy_{};
  std::vector<ClassSamples> per_class_;
  std::vector<double> all_wait_, all_service_, all_sojourn_;
  // --- closed-loop state (inert without a controller) ---
  const control::ControlOptions* copts_ = nullptr;
  const std::vector<TypePoints>* tables_ = nullptr;
  std::unique_ptr<control::Controller> controller_;
  double shard_share_ = 1.0;
  std::size_t dispatchable_ = 0;
  Seconds last_tick_{};
  bool event_tick_pending_ = false;
  bool arrivals_done_ = false;
  std::size_t preload_total_ = 0;
  std::size_t preload_fired_ = 0;
  const std::vector<Arrival>* assigned_ = nullptr;
  std::size_t assigned_cursor_ = 0;
  std::vector<RequestRecord> records_;
  std::uint64_t window_arrivals_ = 0;
  std::vector<std::uint64_t> window_shed_;
  std::vector<std::vector<double>> window_sojourns_;
  std::vector<control::NodeStatus> status_buf_;
  std::vector<control::ClassFeedback> class_buf_;
  control::ControlSummary csum_;
  struct SleepSpan {
    Seconds start;
    Seconds end;
    Watts delta;  ///< idle - sleep draw saved while parked
  };
  std::vector<SleepSpan> sleep_spans_;
  /// (time, ΔWatts) events for post-run PowerTrace reconstruction.
  std::vector<std::pair<double, double>> ledger_;
  // --- streaming telemetry (inert without TrafficOptions::stream) ---
  std::unique_ptr<obs::stream::Collector> stream_;
  std::unique_ptr<obs::stream::FlightRecorder> frec_;
  std::vector<obs::stream::DecisionRecord::Transition> tick_transitions_;
  std::uint32_t shard_index_ = 0;
  std::uint32_t shard_count_ = 1;
#if HCEP_OBS
  obs::Observer* o_ = nullptr;
  obs::MetricId offered_m_ = 0, admitted_m_ = 0, shed_m_ = 0, retries_m_ = 0,
                completed_m_ = 0, failed_m_ = 0, sojourn_m_ = 0;
  obs::StringId cat_s_ = 0, request_s_ = 0, wait_key_s_ = 0, inflight_s_ = 0,
                shed_cat_s_ = 0, bucket_s_ = 0, queue_s_ = 0;
  obs::MetricId ctrl_ticks_m_ = 0, ctrl_sleeps_m_ = 0, ctrl_wakes_m_ = 0,
                ctrl_points_m_ = 0, ctrl_active_g_ = 0, ctrl_power_g_ = 0;
  obs::StringId ctrl_cat_s_ = 0, tick_s_ = 0, active_track_s_ = 0,
                power_track_s_ = 0;
#endif
};

}  // namespace

double cluster_capacity_per_s(const model::ClusterSpec& cluster,
                              const std::vector<TrafficClass>& classes) {
  cluster.validate();
  require(!classes.empty(), "cluster_capacity_per_s: no traffic classes");
  const std::vector<Node> nodes = materialize_nodes(cluster, classes);
  double weight_total = 0.0;
  for (const auto& c : classes) weight_total += c.weight;
  double capacity = 0.0;
  for (const auto& n : nodes) {
    double mean_service = 0.0;
    for (std::size_t s = 0; s < classes.size(); ++s)
      mean_service +=
          classes[s].weight / weight_total * n.service[s].value();
    capacity += 1.0 / mean_service;
  }
  return capacity;
}

namespace {

/// Shared implementation: exactly one of `process` (generated stream)
/// or `assigned` (explicit time-sorted arrivals) is non-null. The
/// generated paths execute the exact event and RNG sequence of previous
/// releases; the assigned path reuses the single-shard event loop with
/// the generator pump swapped for a lazy cursor over the vector.
TrafficResult run_simulation(const model::ClusterSpec& cluster,
                             const std::vector<TrafficClass>& classes,
                             const ArrivalProcess* process,
                             const std::vector<Arrival>* assigned,
                             const TrafficOptions& options) {
  cluster.validate();
  require(!classes.empty(), "simulate_traffic: no traffic classes");
  require(options.requests > 0 || assigned != nullptr,
          "simulate_traffic: need at least one request");
  require(options.retry.max_attempts >= 1,
          "simulate_traffic: retry.max_attempts must be >= 1");
  require(options.shards >= 1, "simulate_traffic: shards must be >= 1");
  const bool controlled = options.control.enabled();
  if (controlled) {
    require(options.control.period.value() > 0.0,
            "simulate_traffic: control.period must be > 0");
    require(options.control.min_event_spacing.value() >= 0.0,
            "simulate_traffic: control.min_event_spacing must be >= 0");
  }

  std::vector<Node> all_nodes = materialize_nodes(cluster, classes);
  require(options.shards <= all_nodes.size(),
          "simulate_traffic: more shards than nodes");
  const std::vector<double> cumulative = cumulative_weights(classes);
  const std::size_t shard_count = options.shards;
  const std::size_t total_nodes = all_nodes.size();

  // Controlled runs additionally materialize the per-type operating-point
  // ladders and stamp each node with its type ordinal + configured point.
  // materialize_nodes iterates present groups in spec order, emitting
  // g.count nodes per group, so the stamping below walks the same order.
  const bool streaming = options.stream.enabled();
  std::vector<TypePoints> point_tables;
  if (controlled) point_tables = materialize_point_tables(cluster, classes);
  if (controlled || streaming) {
    std::size_t ni = 0;
    std::uint32_t gi = 0;
    for (const auto& g : cluster.groups) {
      if (g.count == 0) continue;
      for (unsigned k = 0; k < g.count; ++k, ++ni) {
        all_nodes[ni].type_ord = gi;
        if (controlled) {
          all_nodes[ni].point = point_tables[gi].configured;
          all_nodes[ni].sleep_power = options.control.sleep_power;
        }
      }
      ++gi;
    }
  }
  const std::vector<TypePoints>* tables_ptr =
      controlled ? &point_tables : nullptr;

  // Node-class identity rows of the streamed timeline: one per present
  // group, in spec order — the same ordinals type_ord indexes.
  std::vector<obs::stream::NodeClassInfo> stream_classes;
  if (streaming) {
    for (const auto& g : cluster.groups) {
      if (g.count == 0) continue;
      stream_classes.push_back(obs::stream::NodeClassInfo{
          g.spec.name, static_cast<std::uint64_t>(g.count)});
    }
  }
  const std::vector<obs::stream::NodeClassInfo>* stream_ptr =
      streaming ? &stream_classes : nullptr;

  std::vector<std::unique_ptr<Engine>> engines;
  std::string process_name;

  if (shard_count == 1) {
    // Classic path: one event loop, generator sampled in-loop. This is
    // byte-identical (same RNG draw order, same event sequence) to the
    // pre-sharding implementation. Assigned-arrival runs reuse this loop
    // with the pump swapped for a lazy cursor over the caller's vector.
    auto sim = std::make_unique<des::Simulator>();
    engines.push_back(std::make_unique<Engine>(
        *sim, classes, cumulative, options, std::move(all_nodes),
        assigned != nullptr ? assigned->size() : options.requests,
        Rng(options.seed), /*tracing=*/true, tables_ptr,
        /*shard_share=*/1.0, stream_ptr, /*shard_index=*/0));
    engines[0]->start_control();
    if (assigned != nullptr) {
      process_name = "assigned";
      engines[0]->start_assigned(*assigned);
    } else {
      std::unique_ptr<ArrivalProcess> gen = process->clone();
      process_name = gen->name();
      engines[0]->start_pump(*gen);
    }
    sim->run();
  } else {
    // Sharded path: the arrival stream (time and class of every request)
    // is generated up front from the seed — the same stream regardless
    // of shard count — then requests and nodes are partitioned
    // round-robin across shards. Shards share no mutable state, so the
    // windows can run in parallel; per-request tracer spans are disabled
    // (thread interleaving would make the trace nondeterministic) while
    // the atomic metrics counters stay on.
    std::unique_ptr<ArrivalProcess> gen = process->clone();
    process_name = gen->name();
    Rng arrival_rng(options.seed);
    std::vector<std::vector<Arrival>> shard_arrivals(shard_count);
    std::vector<std::vector<std::uint32_t>> shard_indices(shard_count);
    Seconds t{0.0};
    for (std::uint64_t k = 0; k < options.requests; ++k) {
      t = gen->next(t, arrival_rng);
      if (!(t.value() < std::numeric_limits<double>::infinity())) break;
      std::size_t cls = 0;
      if (classes.size() > 1) {
        const double coin = arrival_rng.uniform01();
        while (cls + 1 < classes.size() && coin > cumulative[cls]) ++cls;
      }
      shard_arrivals[k % shard_count].push_back(
          Arrival{t, static_cast<std::uint32_t>(cls)});
      shard_indices[k % shard_count].push_back(static_cast<std::uint32_t>(k));
    }

    std::vector<std::vector<Node>> shard_nodes(shard_count);
    for (std::size_t i = 0; i < all_nodes.size(); ++i)
      shard_nodes[i % shard_count].push_back(std::move(all_nodes[i]));

    // The traffic shards exchange no cross-shard events, so the
    // conservative window can span the whole run: one window, one
    // barrier, full parallelism.
    des::ShardedSimulator sharded(shard_count, Seconds{1e300});
    for (std::size_t s = 0; s < shard_count; ++s) {
      // Each shard's controller clone governs its node slice against a
      // proportional share of any global budget.
      const double share = static_cast<double>(shard_nodes[s].size()) /
                           static_cast<double>(total_nodes);
      engines.push_back(std::make_unique<Engine>(
          sharded.shard(s), classes, cumulative, options,
          std::move(shard_nodes[s]),
          options.requests / shard_count + 1,
          Rng(options.seed).split(static_cast<unsigned>(s)),
          /*tracing=*/false, tables_ptr, share, stream_ptr,
          static_cast<std::uint32_t>(s)));
      engines[s]->preload(shard_arrivals[s], shard_indices[s]);
      engines[s]->start_control();
    }
    sharded.run(options.parallel_shards);
  }

  // ------------------------------------------------------------ summaries
  // Merge in shard order — deterministic for a fixed (seed, shards).
  TrafficResult out;
  out.arrival_process = process_name;
  out.shards = shard_count;

  std::vector<double> all_wait, all_service, all_sojourn;
  std::vector<ClassSamples> per_class(classes.size());
  Joules dynamic_energy{0.0};
  Seconds makespan{0.0};
  std::vector<Node*> merged_nodes;
  for (auto& e : engines) {
    out.offered += e->offered;
    out.admitted += e->admitted;
    out.shed_bucket += e->shed_bucket;
    out.shed_queue += e->shed_queue;
    out.retries += e->retries;
    out.completed += e->completed;
    out.failed += e->failed;
    dynamic_energy += e->dynamic_energy();
    makespan = std::max(makespan, e->makespan());
    for (std::size_t s = 0; s < classes.size(); ++s) {
      ClassSamples& dst = per_class[s];
      ClassSamples& src = e->per_class()[s];
      dst.offered += src.offered;
      dst.admitted += src.admitted;
      dst.shed += src.shed;
      dst.retries += src.retries;
      dst.completed += src.completed;
      dst.failed += src.failed;
      dst.slo_violations += src.slo_violations;
      dst.dynamic_energy += src.dynamic_energy;
      if (engines.size() == 1) {
        dst.wait = std::move(src.wait);
        dst.service = std::move(src.service);
        dst.sojourn = std::move(src.sojourn);
      } else {
        dst.wait.insert(dst.wait.end(), src.wait.begin(), src.wait.end());
        dst.service.insert(dst.service.end(), src.service.begin(),
                           src.service.end());
        dst.sojourn.insert(dst.sojourn.end(), src.sojourn.begin(),
                           src.sojourn.end());
      }
    }
    if (engines.size() == 1) {
      all_wait = std::move(e->all_wait());
      all_service = std::move(e->all_service());
      all_sojourn = std::move(e->all_sojourn());
    } else {
      all_wait.insert(all_wait.end(), e->all_wait().begin(),
                      e->all_wait().end());
      all_service.insert(all_service.end(), e->all_service().begin(),
                         e->all_service().end());
      all_sojourn.insert(all_sojourn.end(), e->all_sojourn().begin(),
                         e->all_sojourn().end());
    }
    for (Node& n : e->nodes()) merged_nodes.push_back(&n);
  }

  if (options.record_requests) {
    std::size_t total_records = 0;
    for (auto& e : engines) total_records += e->records().size();
    out.requests.reserve(total_records);
    for (auto& e : engines) {
      if (engines.size() == 1) {
        out.requests = std::move(e->records());
      } else {
        out.requests.insert(out.requests.end(), e->records().begin(),
                            e->records().end());
      }
    }
    // Arrival indices are unique per request, so sorting by index is a
    // total order — the record vector is identical for any shard count.
    std::sort(out.requests.begin(), out.requests.end(),
              [](const RequestRecord& a, const RequestRecord& b) {
                return a.index < b.index;
              });
  }

  out.wait = LatencySummary::from_samples(all_wait);
  out.service = LatencySummary::from_samples(all_service);
  out.sojourn = LatencySummary::from_samples(all_sojourn);

  Watts idle_floor{0.0};
  for (const Node* n : merged_nodes) idle_floor += n->idle;
  const Joules idle_energy = idle_floor * makespan;
  out.makespan = makespan;

  if (streaming) {
    std::vector<obs::stream::Collector*> collectors;
    for (auto& e : engines) collectors.push_back(e->stream());
    out.timeline =
        obs::stream::Collector::merge_finalize(collectors, makespan);
  }

  // Shared (non-request-attributable) energy: the idle floor, minus what
  // power gating saved, plus wake transients. With no controller — or a
  // frozen one — savings and wake costs are exactly 0.0, so the
  // arithmetic below reproduces the open-loop energy bit-for-bit.
  Joules shared_energy = idle_energy;
  if (controlled) {
    for (auto& e : engines) e->finalize_control(makespan);
    control::ControlSummary& merged = out.control;
    merged.enabled = true;
    merged.controller = engines[0]->control_summary().controller;
    merged.all_dispatches_available = true;
    for (auto& e : engines) {
      const control::ControlSummary& cs = e->control_summary();
      merged.ticks += cs.ticks;
      merged.event_ticks += cs.event_ticks;
      merged.sleeps += cs.sleeps;
      merged.wakes += cs.wakes;
      merged.point_changes += cs.point_changes;
      merged.gating_savings += cs.gating_savings;
      merged.wake_energy += cs.wake_energy;
      merged.all_dispatches_available =
          merged.all_dispatches_available && cs.all_dispatches_available;
    }
    if (options.control.flight_recorder) {
      std::vector<const obs::stream::FlightRecorder*> recorders;
      for (auto& e : engines)
        recorders.push_back(&e->control_summary().flight);
      merged.flight = obs::stream::FlightRecorder::merge(recorders);
    }
    shared_energy = shared_energy - merged.gating_savings +
                    merged.wake_energy;
    if (options.control.record_power_trace) {
      // Rebuild the rack power profile from the per-engine delta
      // ledgers: base idle floor at t = 0, then every dispatch /
      // completion / sleep / wake delta, coalesced per timestamp.
      std::vector<std::pair<double, double>> deltas;
      deltas.emplace_back(0.0, idle_floor.value());
      for (auto& e : engines) {
        deltas.insert(deltas.end(), e->ledger().begin(), e->ledger().end());
      }
      std::stable_sort(deltas.begin(), deltas.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      double level = 0.0;
      std::size_t k = 0;
      while (k < deltas.size()) {
        const double t = deltas[k].first;
        while (k < deltas.size() && deltas[k].first == t) {
          level += deltas[k].second;
          ++k;
        }
        merged.trace.step(Seconds{t}, Watts{level});
      }
    }
  }

  out.energy = shared_energy + dynamic_energy;
  if (makespan.value() > 0.0) out.average_power = out.energy / makespan;
  if (out.completed > 0)
    out.energy_per_request = out.energy / static_cast<double>(out.completed);

  for (std::size_t s = 0; s < classes.size(); ++s) {
    ClassStats st;
    st.name = classes[s].workload.name;
    st.slo = classes[s].slo;
    ClassSamples& cs = per_class[s];
    st.offered = cs.offered;
    st.admitted = cs.admitted;
    st.shed = cs.shed;
    st.retries = cs.retries;
    st.completed = cs.completed;
    st.failed = cs.failed;
    st.slo_violations = cs.slo_violations;
    st.wait = LatencySummary::from_samples(cs.wait);
    st.service = LatencySummary::from_samples(cs.service);
    st.sojourn = LatencySummary::from_samples(cs.sojourn);
    if (cs.completed > 0 && out.completed > 0) {
      // Shared energy attributed by completion share, dynamic exactly.
      const Joules idle_share =
          shared_energy * (static_cast<double>(cs.completed) /
                           static_cast<double>(out.completed));
      st.energy_per_request = (idle_share + cs.dynamic_energy) /
                              static_cast<double>(cs.completed);
    }
    out.classes.push_back(std::move(st));
  }

  // Per node type (dispatch-result convention: busy fraction is averaged
  // over the nodes of the type).
  for (const Node* n : merged_nodes) {
    auto it = std::find_if(
        out.nodes.begin(), out.nodes.end(),
        [&](const cluster::NodeLoad& l) { return l.node_name == n->type; });
    if (it == out.nodes.end()) {
      out.nodes.push_back(cluster::NodeLoad{n->type, 0, 0.0});
      it = out.nodes.end() - 1;
    }
    it->jobs_served += n->served;
    it->busy_fraction += n->busy_time.value();
  }
  for (auto& l : out.nodes) {
    double count = 0;
    for (const Node* n : merged_nodes)
      if (n->type == l.node_name) count += 1.0;
    if (makespan.value() > 0.0)
      l.busy_fraction /= std::max(1.0, count) * makespan.value();
  }
  return out;
}

}  // namespace

TrafficResult simulate_traffic(const model::ClusterSpec& cluster,
                               const std::vector<TrafficClass>& classes,
                               const ArrivalProcess& arrivals,
                               const TrafficOptions& options) {
  return run_simulation(cluster, classes, &arrivals, nullptr, options);
}

TrafficResult simulate_traffic(const model::ClusterSpec& cluster,
                               const std::vector<TrafficClass>& classes,
                               const std::vector<Arrival>& arrivals,
                               const TrafficOptions& options) {
  require(options.shards == 1,
          "simulate_traffic: assigned arrivals require shards == 1 (the "
          "routing tier owns any parallelism)");
  require(std::is_sorted(arrivals.begin(), arrivals.end(),
                         [](const Arrival& a, const Arrival& b) {
                           return a.t < b.t;
                         }),
          "simulate_traffic: assigned arrivals must be sorted by time");
  for (const Arrival& a : arrivals) {
    require(a.cls < classes.size(),
            "simulate_traffic: assigned arrival class out of range");
    require(a.t.value() >= 0.0,
            "simulate_traffic: assigned arrival before t = 0");
  }
  return run_simulation(cluster, classes, nullptr, &arrivals, options);
}

JsonValue TrafficResult::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("schema_version", JsonValue::number(std::int64_t{1}));
  o.set("arrival_process", JsonValue::string(arrival_process));
  // Emitted only for sharded runs: the single-shard document stays
  // byte-identical with pre-sharding releases.
  if (shards > 1)
    o.set("shards", JsonValue::number(static_cast<std::int64_t>(shards)));
  o.set("offered", JsonValue::number(static_cast<std::int64_t>(offered)));
  o.set("admitted", JsonValue::number(static_cast<std::int64_t>(admitted)));
  o.set("shed_bucket",
        JsonValue::number(static_cast<std::int64_t>(shed_bucket)));
  o.set("shed_queue",
        JsonValue::number(static_cast<std::int64_t>(shed_queue)));
  o.set("retries", JsonValue::number(static_cast<std::int64_t>(retries)));
  o.set("completed",
        JsonValue::number(static_cast<std::int64_t>(completed)));
  o.set("failed", JsonValue::number(static_cast<std::int64_t>(failed)));
  o.set("makespan_s", JsonValue::number(makespan.value()));
  o.set("wait", wait.to_json());
  o.set("service", service.to_json());
  o.set("sojourn", sojourn.to_json());
  o.set("energy_j", JsonValue::number(energy.value()));
  o.set("average_power_w", JsonValue::number(average_power.value()));
  o.set("energy_per_request_j",
        JsonValue::number(energy_per_request.value()));
  JsonValue cls = JsonValue::array();
  for (const auto& c : classes) cls.push(c.to_json());
  o.set("classes", std::move(cls));
  JsonValue nds = JsonValue::array();
  for (const auto& n : nodes) {
    JsonValue nd = JsonValue::object();
    nd.set("node", JsonValue::string(n.node_name));
    nd.set("requests",
           JsonValue::number(static_cast<std::int64_t>(n.jobs_served)));
    nd.set("busy_fraction", JsonValue::number(n.busy_fraction));
    nds.push(std::move(nd));
  }
  o.set("nodes", std::move(nds));
  return o;
}

}  // namespace hcep::traffic
