#include "hcep/traffic/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <sstream>

#include "hcep/util/error.hpp"
#include "hcep/util/json.hpp"

namespace hcep::traffic {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class Poisson final : public ArrivalProcess {
 public:
  explicit Poisson(double rate) : rate_(rate) {
    require(rate_ > 0.0, "make_poisson: rate must be positive");
  }
  Seconds next(Seconds now, Rng& rng) override {
    return now + Seconds{rng.exponential(rate_)};
  }
  double mean_rate_per_s() const override { return rate_; }
  std::string name() const override { return "poisson"; }
  std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<Poisson>(rate_);
  }

 private:
  double rate_;
};

class Deterministic final : public ArrivalProcess {
 public:
  explicit Deterministic(double rate) : rate_(rate) {
    require(rate_ > 0.0, "make_deterministic: rate must be positive");
  }
  Seconds next(Seconds now, Rng&) override {
    return now + Seconds{1.0 / rate_};
  }
  double mean_rate_per_s() const override { return rate_; }
  std::string name() const override { return "deterministic"; }
  std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<Deterministic>(rate_);
  }

 private:
  double rate_;
};

class Mmpp final : public ArrivalProcess {
 public:
  explicit Mmpp(std::vector<MmppPhase> phases) : phases_(std::move(phases)) {
    require(phases_.size() >= 2, "make_mmpp: need at least two phases");
    bool any_rate = false;
    for (const auto& p : phases_) {
      require(p.rate_per_s >= 0.0, "make_mmpp: negative phase rate");
      require(p.mean_dwell.value() > 0.0, "make_mmpp: non-positive dwell");
      any_rate = any_rate || p.rate_per_s > 0.0;
    }
    require(any_rate, "make_mmpp: every phase has rate zero");
  }

  Seconds next(Seconds now, Rng& rng) override {
    // Competing exponentials: draw a candidate arrival in the current
    // phase; if the phase expires first, advance to the next phase and
    // redraw from the expiry instant (memorylessness makes this exact).
    double t = now.value();
    for (;;) {
      if (!dwell_armed_) {
        phase_end_ = t + rng.exponential(
                             1.0 / phases_[phase_].mean_dwell.value());
        dwell_armed_ = true;
      }
      const double rate = phases_[phase_].rate_per_s;
      const double candidate =
          rate > 0.0 ? t + rng.exponential(rate) : kInf;
      if (candidate <= phase_end_) return Seconds{candidate};
      t = phase_end_;
      phase_ = (phase_ + 1) % phases_.size();
      dwell_armed_ = false;
    }
  }

  double mean_rate_per_s() const override {
    // Cyclic chain: phase occupancy is proportional to mean dwell.
    double weighted = 0.0, total = 0.0;
    for (const auto& p : phases_) {
      weighted += p.rate_per_s * p.mean_dwell.value();
      total += p.mean_dwell.value();
    }
    return weighted / total;
  }
  std::string name() const override { return "mmpp"; }
  std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<Mmpp>(phases_);
  }

 private:
  std::vector<MmppPhase> phases_;
  std::size_t phase_ = 0;
  double phase_end_ = 0.0;
  bool dwell_armed_ = false;
};

class Diurnal final : public ArrivalProcess {
 public:
  Diurnal(double mean, double swing, Seconds period, double phase)
      : mean_(mean), swing_(swing), period_(period), phase_(phase) {
    require(mean_ > 0.0, "make_diurnal: mean rate must be positive");
    require(swing_ >= 0.0 && swing_ < 1.0,
            "make_diurnal: swing must lie in [0, 1)");
    require(period_.value() > 0.0, "make_diurnal: period must be positive");
  }

  Seconds next(Seconds now, Rng& rng) override {
    // Lewis-Shedler thinning against the peak rate: candidates at the
    // homogeneous peak rate, accepted with probability rate(t)/peak.
    const double peak = mean_ * (1.0 + swing_);
    double t = now.value();
    for (;;) {
      t += rng.exponential(peak);
      if (rng.uniform01() * peak <= rate_at(t)) return Seconds{t};
    }
  }

  double mean_rate_per_s() const override { return mean_; }
  std::string name() const override { return "diurnal"; }
  std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<Diurnal>(mean_, swing_, period_, phase_);
  }

 private:
  [[nodiscard]] double rate_at(double t) const {
    return mean_ * (1.0 + swing_ * std::sin(2.0 * std::numbers::pi *
                                            (t / period_.value() + phase_)));
  }

  double mean_;
  double swing_;
  Seconds period_;
  double phase_;
};

class Replay final : public ArrivalProcess {
 public:
  Replay(std::vector<Seconds> arrivals, bool loop)
      : arrivals_(std::move(arrivals)), loop_(loop) {
    require(!arrivals_.empty(), "make_replay: empty arrival trace");
    require(std::is_sorted(arrivals_.begin(), arrivals_.end()),
            "make_replay: arrivals must be sorted ascending");
    require(arrivals_.front().value() >= 0.0,
            "make_replay: negative timestamp");
  }

  Seconds next(Seconds now, Rng&) override {
    for (;;) {
      if (cursor_ == arrivals_.size()) {
        if (!loop_) return Seconds{kInf};
        // Repeat the trace, shifted past its span by one mean gap so the
        // looped stream keeps the recorded long-run rate.
        cursor_ = 0;
        shift_ += cycle_span();
      }
      const Seconds t = arrivals_[cursor_] + Seconds{shift_};
      ++cursor_;
      if (t >= now) return t;
    }
  }

  double mean_rate_per_s() const override {
    return static_cast<double>(arrivals_.size()) / cycle_span();
  }
  std::string name() const override { return "replay"; }
  std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<Replay>(arrivals_, loop_);
  }

 private:
  [[nodiscard]] double cycle_span() const {
    const double span =
        arrivals_.back().value() - arrivals_.front().value();
    if (arrivals_.size() < 2 || span <= 0.0) return 1.0;
    const double mean_gap =
        span / static_cast<double>(arrivals_.size() - 1);
    return span + mean_gap;
  }

  std::vector<Seconds> arrivals_;
  bool loop_;
  std::size_t cursor_ = 0;
  double shift_ = 0.0;
};

}  // namespace

std::unique_ptr<ArrivalProcess> make_poisson(double rate_per_s) {
  return std::make_unique<Poisson>(rate_per_s);
}

std::unique_ptr<ArrivalProcess> make_deterministic(double rate_per_s) {
  return std::make_unique<Deterministic>(rate_per_s);
}

std::unique_ptr<ArrivalProcess> make_mmpp(std::vector<MmppPhase> phases) {
  return std::make_unique<Mmpp>(std::move(phases));
}

std::unique_ptr<ArrivalProcess> make_bursty(double base_rate_per_s,
                                            Seconds base_dwell,
                                            double burst_rate_per_s,
                                            Seconds burst_dwell) {
  return make_mmpp({MmppPhase{base_rate_per_s, base_dwell},
                    MmppPhase{burst_rate_per_s, burst_dwell}});
}

std::unique_ptr<ArrivalProcess> make_diurnal(double mean_rate_per_s,
                                             double swing, Seconds period,
                                             double phase) {
  return std::make_unique<Diurnal>(mean_rate_per_s, swing, period, phase);
}

std::unique_ptr<ArrivalProcess> make_diurnal(double mean_rate_per_s,
                                             double swing, Seconds period,
                                             Seconds peak_offset) {
  require(period.value() > 0.0, "make_diurnal: period must be positive");
  return std::make_unique<Diurnal>(mean_rate_per_s, swing, period,
                                   -peak_offset.value() / period.value());
}

std::unique_ptr<ArrivalProcess> make_replay(std::vector<Seconds> arrivals,
                                            bool loop) {
  return std::make_unique<Replay>(std::move(arrivals), loop);
}

std::vector<Seconds> read_arrivals_csv(std::string_view text) {
  std::vector<Seconds> out;
  std::size_t lineno = 0;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::string first = line.substr(0, line.find(','));
    std::size_t consumed = 0;
    double ts = 0.0;
    try {
      ts = std::stod(first, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != first.size()) {
      // A non-numeric first row is a header; anywhere else it is an error.
      if (lineno == 1 && out.empty()) continue;
      throw PreconditionError("read_arrivals_csv: line " +
                              std::to_string(lineno) +
                              ": non-numeric timestamp '" + first + "'");
    }
    require(ts >= 0.0, "read_arrivals_csv: line " + std::to_string(lineno) +
                           ": negative timestamp");
    out.push_back(Seconds{ts});
  }
  require(!out.empty(), "read_arrivals_csv: no arrivals in input");
  require(std::is_sorted(out.begin(), out.end()),
          "read_arrivals_csv: timestamps must be sorted ascending");
  return out;
}

std::vector<Seconds> read_arrivals_jsonl(std::string_view text) {
  std::vector<Seconds> out;
  std::size_t lineno = 0;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    JsonValue row;
    try {
      row = JsonValue::parse(line);
    } catch (const std::exception& e) {
      throw PreconditionError("read_arrivals_jsonl: line " +
                              std::to_string(lineno) + ": " + e.what());
    }
    const JsonValue* ts = row.find("ts");
    require(ts != nullptr, "read_arrivals_jsonl: line " +
                               std::to_string(lineno) + ": missing \"ts\"");
    const double v = ts->as_number();
    require(v >= 0.0, "read_arrivals_jsonl: line " + std::to_string(lineno) +
                          ": negative timestamp");
    out.push_back(Seconds{v});
  }
  require(!out.empty(), "read_arrivals_jsonl: no arrivals in input");
  require(std::is_sorted(out.begin(), out.end()),
          "read_arrivals_jsonl: timestamps must be sorted ascending");
  return out;
}

}  // namespace hcep::traffic
