#include "hcep/traffic/slo.hpp"

#include <algorithm>

#include "hcep/util/stats.hpp"

namespace hcep::traffic {

LatencySummary LatencySummary::from_samples(std::vector<double>& samples_s) {
  LatencySummary out;
  out.count = samples_s.size();
  if (samples_s.empty()) return out;
  std::sort(samples_s.begin(), samples_s.end());
  double sum = 0.0;
  for (const double s : samples_s) sum += s;
  out.mean = Seconds{sum / static_cast<double>(samples_s.size())};
  out.p50 = Seconds{percentile(samples_s, 50.0)};
  out.p95 = Seconds{percentile(samples_s, 95.0)};
  out.p99 = Seconds{percentile(samples_s, 99.0)};
  out.max = Seconds{samples_s.back()};
  return out;
}

JsonValue LatencySummary::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("count", JsonValue::number(static_cast<std::int64_t>(count)));
  o.set("mean_s", JsonValue::number(mean.value()));
  o.set("p50_s", JsonValue::number(p50.value()));
  o.set("p95_s", JsonValue::number(p95.value()));
  o.set("p99_s", JsonValue::number(p99.value()));
  o.set("max_s", JsonValue::number(max.value()));
  return o;
}

double ClassStats::violation_fraction() const {
  if (completed == 0) return 0.0;
  return static_cast<double>(slo_violations) /
         static_cast<double>(completed);
}

bool ClassStats::slo_met() const {
  if (!slo.enabled() || completed == 0) return true;
  // The target quantile must sit at or below the latency objective:
  // equivalently, the violating fraction must fit into 1 - quantile.
  return violation_fraction() <= (1.0 - slo.quantile) + 1e-12;
}

JsonValue ClassStats::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("name", JsonValue::string(name));
  o.set("offered", JsonValue::number(static_cast<std::int64_t>(offered)));
  o.set("admitted", JsonValue::number(static_cast<std::int64_t>(admitted)));
  o.set("shed", JsonValue::number(static_cast<std::int64_t>(shed)));
  o.set("retries", JsonValue::number(static_cast<std::int64_t>(retries)));
  o.set("completed",
        JsonValue::number(static_cast<std::int64_t>(completed)));
  o.set("failed", JsonValue::number(static_cast<std::int64_t>(failed)));
  o.set("slo_violations",
        JsonValue::number(static_cast<std::int64_t>(slo_violations)));
  if (slo.enabled()) {
    JsonValue s = JsonValue::object();
    s.set("latency_s", JsonValue::number(slo.latency.value()));
    s.set("quantile", JsonValue::number(slo.quantile));
    s.set("met", JsonValue::boolean(slo_met()));
    o.set("slo", std::move(s));
  }
  o.set("wait", wait.to_json());
  o.set("service", service.to_json());
  o.set("sojourn", sojourn.to_json());
  o.set("energy_per_request_j",
        JsonValue::number(energy_per_request.value()));
  return o;
}

}  // namespace hcep::traffic
