#include "hcep/hw/catalog.hpp"

#include "hcep/util/error.hpp"

namespace hcep::hw {

using namespace hcep::literals;

NodeSpec cortex_a9() {
  NodeSpec n;
  n.name = "A9";
  n.isa = Isa::kArmV7A;
  n.cores = 4;
  n.dvfs = DvfsLadder{{0.2_GHz, 0.5_GHz, 0.8_GHz, 1.1_GHz, 1.4_GHz}};
  n.caches = CacheSpec{.l1d_per_core = 32_KB,
                       .l2 = 1_MB,
                       .l2_per_core = false,
                       .l3 = Bytes{0}};
  n.memory = 1_GB;
  n.nic_bandwidth = BytesPerSecond{100e6 / 8.0};  // 100 Mbps
  n.power = PowerComponents{.idle = 1.8_W,
                            .core_active = 0.55_W,
                            .core_stalled = 0.28_W,
                            .mem_active = 0.5_W,
                            .net_active = 0.3_W,
                            .dvfs_exponent = 2.2};
  // In-order-ish dual-issue core: modest CPI, weak FP, no crypto
  // acceleration, LP-DDR2 stream bandwidth ~1.3 GB/s.
  n.cost = CostModel{.cpi_int = 1.1,
                     .cpi_fp = 2.2,
                     .cpi_branch = 1.5,
                     .cpi_crypto = 28.0,
                     .crypto_speedup = 1.0,
                     .mem_bandwidth = BytesPerSecond{1.3e9},
                     .mem_core_scalability = 0.20};
  n.nameplate_peak = 5_W;
  n.validate();
  return n;
}

NodeSpec opteron_k10() {
  NodeSpec n;
  n.name = "K10";
  n.isa = Isa::kX86_64;
  n.cores = 6;
  n.dvfs = DvfsLadder{{0.8_GHz, 1.5_GHz, 2.1_GHz}};
  n.caches = CacheSpec{.l1d_per_core = 64_KB,
                       .l2 = 512_KB,
                       .l2_per_core = true,
                       .l3 = 6_MB};
  n.memory = 8_GB;
  n.nic_bandwidth = BytesPerSecond{1e9 / 8.0};  // 1 Gbps
  n.power = PowerComponents{.idle = 45.0_W,
                            .core_active = 4.3_W,
                            .core_stalled = 2.1_W,
                            .mem_active = 3.5_W,
                            .net_active = 1.2_W,
                            .dvfs_exponent = 2.5};
  // Wide out-of-order core: low CPI, strong FP/SIMD, hardware-friendly
  // crypto sequences, DDR3 stream bandwidth ~10 GB/s.
  n.cost = CostModel{.cpi_int = 0.45,
                     .cpi_fp = 0.7,
                     .cpi_branch = 0.8,
                     .cpi_crypto = 28.0,
                     .crypto_speedup = 9.0,
                     .mem_bandwidth = BytesPerSecond{10.0e9},
                     .mem_core_scalability = 0.35};
  n.nameplate_peak = 60_W;
  n.validate();
  return n;
}

NodeSpec cortex_a15() {
  NodeSpec n;
  n.name = "A15";
  n.isa = Isa::kArmV7A;
  n.cores = 4;
  n.dvfs = DvfsLadder{{0.6_GHz, 1.0_GHz, 1.4_GHz, 1.8_GHz}};
  n.caches = CacheSpec{.l1d_per_core = 32_KB,
                       .l2 = 2_MB,
                       .l2_per_core = false,
                       .l3 = Bytes{0}};
  n.memory = 2_GB;
  n.nic_bandwidth = BytesPerSecond{1e9 / 8.0};
  n.power = PowerComponents{.idle = 3.2_W,
                            .core_active = 1.5_W,
                            .core_stalled = 0.7_W,
                            .mem_active = 0.9_W,
                            .net_active = 0.4_W,
                            .dvfs_exponent = 2.3};
  n.cost = CostModel{.cpi_int = 0.8,
                     .cpi_fp = 1.3,
                     .cpi_branch = 1.1,
                     .cpi_crypto = 28.0,
                     .crypto_speedup = 1.0,
                     .mem_bandwidth = BytesPerSecond{3.5e9},
                     .mem_core_scalability = 0.25};
  n.nameplate_peak = 12_W;
  n.validate();
  return n;
}

NodeSpec xeon_e5() {
  NodeSpec n;
  n.name = "XeonE5";
  n.isa = Isa::kX86_64;
  n.cores = 8;
  n.dvfs = DvfsLadder{{1.2_GHz, 1.8_GHz, 2.4_GHz, 2.9_GHz}};
  n.caches = CacheSpec{.l1d_per_core = 32_KB,
                       .l2 = 256_KB,
                       .l2_per_core = true,
                       .l3 = 20_MB};
  n.memory = 32_GB;
  n.nic_bandwidth = BytesPerSecond{10e9 / 8.0};
  n.power = PowerComponents{.idle = 62.0_W,
                            .core_active = 6.5_W,
                            .core_stalled = 3.0_W,
                            .mem_active = 6.0_W,
                            .net_active = 2.5_W,
                            .dvfs_exponent = 2.6};
  n.cost = CostModel{.cpi_int = 0.35,
                     .cpi_fp = 0.5,
                     .cpi_branch = 0.6,
                     .cpi_crypto = 28.0,
                     .crypto_speedup = 14.0,
                     .mem_bandwidth = BytesPerSecond{35.0e9},
                     .mem_core_scalability = 0.45};
  n.nameplate_peak = 130_W;
  n.validate();
  return n;
}

NodeSpec by_name(const std::string& name) {
  if (name == "A9") return cortex_a9();
  if (name == "K10") return opteron_k10();
  if (name == "A15") return cortex_a15();
  if (name == "XeonE5") return xeon_e5();
  throw PreconditionError("hw::by_name: unknown node type '" + name + "'");
}

std::vector<std::string> catalog_names() {
  return {"A9", "K10", "A15", "XeonE5"};
}

Watts a9_switch_power() { return 20.0_W; }

unsigned a9_nodes_per_switch() { return 8; }

Watts switch_power_for(unsigned n_a9) {
  const unsigned per = a9_nodes_per_switch();
  const unsigned switches = (n_a9 + per - 1) / per;
  return a9_switch_power() * static_cast<double>(switches);
}

}  // namespace hcep::hw
