#include "hcep/hw/node.hpp"

#include <algorithm>
#include <cmath>

#include "hcep/util/error.hpp"

namespace hcep::hw {

std::string to_string(Isa isa) {
  switch (isa) {
    case Isa::kArmV7A: return "ARMv7-A";
    case Isa::kArmV8A: return "ARMv8-A";
    case Isa::kX86_64: return "x86_64";
  }
  return "unknown";
}

DvfsLadder::DvfsLadder(std::vector<Hertz> steps) : steps_(std::move(steps)) {
  require(!steps_.empty(), "DvfsLadder: no operating points");
  require(std::is_sorted(steps_.begin(), steps_.end()),
          "DvfsLadder: operating points must be sorted ascending");
  require(steps_.front().value() > 0.0, "DvfsLadder: non-positive frequency");
}

Hertz DvfsLadder::min() const {
  require(!steps_.empty(), "DvfsLadder: empty");
  return steps_.front();
}

Hertz DvfsLadder::max() const {
  require(!steps_.empty(), "DvfsLadder: empty");
  return steps_.back();
}

Hertz DvfsLadder::step(std::size_t i) const {
  require(i < steps_.size(), "DvfsLadder: step index out of range");
  return steps_[i];
}

Hertz DvfsLadder::quantize_up(Hertz f) const {
  require(!steps_.empty(), "DvfsLadder: empty");
  for (Hertz s : steps_)
    if (s >= f) return s;
  return steps_.back();
}

double PowerComponents::dvfs_scale(Hertz f, Hertz f_max) const {
  require(f_max.value() > 0.0, "dvfs_scale: zero reference frequency");
  return std::pow(f / f_max, dvfs_exponent);
}

double CostModel::mem_parallelism(unsigned active_cores) const {
  require(active_cores >= 1, "mem_parallelism: need at least one core");
  return 1.0 + mem_core_scalability * static_cast<double>(active_cores - 1);
}

Watts NodeSpec::node_power(unsigned cores_active, unsigned cores_stalled,
                           bool mem_busy, bool net_busy, Hertz f) const {
  require(cores_active + cores_stalled <= cores,
          "node_power: more busy cores than the node has");
  const double scale = power.dvfs_scale(f, dvfs.max());
  Watts p = power.idle;
  p += power.core_active * (static_cast<double>(cores_active) * scale);
  p += power.core_stalled * (static_cast<double>(cores_stalled) * scale);
  // Memory and NIC power do not scale with core DVFS.
  if (mem_busy) p += power.mem_active;
  if (net_busy) p += power.net_active;
  return p;
}

void NodeSpec::validate() const {
  require(!name.empty(), "NodeSpec: empty name");
  require(cores >= 1, "NodeSpec: node must have at least one core");
  require(dvfs.size() >= 1, "NodeSpec: empty DVFS ladder");
  require(power.idle.value() > 0.0, "NodeSpec: idle power must be positive");
  require(power.core_active.value() >= 0.0, "NodeSpec: negative core power");
  require(nameplate_peak >= power.idle,
          "NodeSpec: nameplate peak below idle power");
  require(cost.mem_bandwidth.value() > 0.0, "NodeSpec: zero memory bandwidth");
  require(nic_bandwidth.value() > 0.0, "NodeSpec: zero NIC bandwidth");
  require(cost.crypto_speedup >= 1.0, "NodeSpec: crypto speedup below 1");
}

}  // namespace hcep::hw
