#include "hcep/hw/network.hpp"

#include "hcep/util/error.hpp"

namespace hcep::hw {

InterSiteNetwork::InterSiteNetwork(std::size_t sites)
    : sites_(sites), links_(sites * sites) {
  require(sites > 0, "InterSiteNetwork: need at least one site");
}

InterSiteNetwork InterSiteNetwork::uniform(std::size_t sites, Seconds latency,
                                           BytesPerSecond bandwidth) {
  InterSiteNetwork net(sites);
  require(latency.value() >= 0.0, "InterSiteNetwork: negative latency");
  require(bandwidth.value() >= 0.0, "InterSiteNetwork: negative bandwidth");
  for (std::size_t i = 0; i < sites; ++i) {
    for (std::size_t j = 0; j < sites; ++j) {
      if (i == j) continue;
      net.links_[i * sites + j] = LinkSpec{latency, bandwidth};
    }
  }
  return net;
}

void InterSiteNetwork::set_link(std::size_t i, std::size_t j,
                                const LinkSpec& link) {
  set_directed_link(i, j, link);
  set_directed_link(j, i, link);
}

void InterSiteNetwork::set_directed_link(std::size_t i, std::size_t j,
                                         const LinkSpec& link) {
  require(i < sites_ && j < sites_, "InterSiteNetwork: site out of range");
  require(i != j, "InterSiteNetwork: the diagonal is implicitly free");
  require(link.latency.value() >= 0.0, "InterSiteNetwork: negative latency");
  require(link.bandwidth.value() >= 0.0,
          "InterSiteNetwork: negative bandwidth");
  links_[i * sites_ + j] = link;
}

const LinkSpec& InterSiteNetwork::link(std::size_t i, std::size_t j) const {
  require(i < sites_ && j < sites_, "InterSiteNetwork: site out of range");
  return links_[i * sites_ + j];
}

Seconds InterSiteNetwork::transit(std::size_t i, std::size_t j,
                                  Bytes payload) const {
  if (i == j) return Seconds{0.0};
  const LinkSpec& l = link(i, j);
  Seconds t = l.latency;
  if (l.bandwidth.value() > 0.0) t += payload / l.bandwidth;
  return t;
}

JsonValue InterSiteNetwork::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("sites", JsonValue::number(static_cast<std::int64_t>(sites_)));
  JsonValue rows = JsonValue::array();
  for (std::size_t i = 0; i < sites_; ++i) {
    JsonValue row = JsonValue::array();
    for (std::size_t j = 0; j < sites_; ++j) {
      const LinkSpec& l = links_[i * sites_ + j];
      JsonValue cell = JsonValue::object();
      cell.set("latency_s", JsonValue::number(l.latency.value()));
      cell.set("bandwidth_bps", JsonValue::number(l.bandwidth.value()));
      row.push(std::move(cell));
    }
    rows.push(std::move(row));
  }
  o.set("links", std::move(rows));
  return o;
}

}  // namespace hcep::hw
