#include "hcep/obs/stream.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "hcep/util/error.hpp"

namespace hcep::obs::stream {
namespace {

// Shortest round-trip double rendering, byte-identical to
// JsonValue::dump so CSV and JSON artifacts agree on every value.
std::string format_number(double v) {
  return JsonValue::number(v).dump();
}

double as_num(const JsonValue& doc, const char* key) {
  return doc.at(key).as_number();
}

std::uint64_t as_count(const JsonValue& doc, const char* key) {
  const std::int64_t v = doc.at(key).as_int();
  require(v >= 0, std::string("stream: negative count field ") + key);
  return static_cast<std::uint64_t>(v);
}

}  // namespace

// ---------------------------------------------------------------------------
// QuantileSketch
// ---------------------------------------------------------------------------

QuantileSketch::QuantileSketch(double epsilon) {
  require(epsilon > 0.0 && epsilon <= 0.5,
          "QuantileSketch: epsilon must be in (0, 0.5]");
  // Finest shift whose proven bound 2^-(shift + 1) meets the request,
  // clamped so the sub-bucket index fits the exponent + mantissa bit
  // budget (11 + 20 bits < 2^31).
  std::uint32_t s = 0;
  while (s < 20 && std::ldexp(1.0, -static_cast<int>(s) - 1) > epsilon) ++s;
  shift_ = s;
}

double QuantileSketch::epsilon() const {
  return std::ldexp(1.0, -static_cast<int>(shift_) - 1);
}

std::size_t QuantileSketch::buckets() const {
  return counts_.size() + ncounts_.size();
}

void QuantileSketch::escalate() {
  --shift_;
  // Halving the sub-bucket resolution maps index -> index >> 1 exactly
  // ((exp << s) | m becomes (exp << (s-1)) | (m >> 1)), so adjacent
  // buckets fold pairwise.
  const auto fold = [](std::vector<std::uint64_t>& arr,
                       std::int32_t& base) {
    if (arr.empty()) return;
    const std::int32_t nb = base >> 1;
    const std::int32_t last =
        (base + static_cast<std::int32_t>(arr.size()) - 1) >> 1;
    std::vector<std::uint64_t> out(
        static_cast<std::size_t>(last - nb) + 1, 0);
    for (std::size_t i = 0; i < arr.size(); ++i) {
      out[static_cast<std::size_t>(
          ((base + static_cast<std::int32_t>(i)) >> 1) - nb)] += arr[i];
    }
    arr = std::move(out);
    base = nb;
  };
  fold(counts_, base_);
  fold(ncounts_, nbase_);
}

void QuantileSketch::extend(bool negative, std::int32_t index) {
  auto& arr = negative ? ncounts_ : counts_;
  auto& base = negative ? nbase_ : base_;
  if (arr.empty()) {
    base = index;
    arr.push_back(0);
  } else if (index < base) {
    arr.insert(arr.begin(), static_cast<std::size_t>(base - index), 0);
    base = index;
  } else {
    arr.resize(static_cast<std::size_t>(index - base) + 1, 0);
  }
  // Bucket-cap pressure: halve the resolution deterministically until
  // the contiguous ranges fit again (at shift 0 the range is the bare
  // exponent, at most 2048 buckets per sign — always under the cap).
  while (counts_.size() + ncounts_.size() > max_buckets() && shift_ > 0)
    escalate();
}

void QuantileSketch::insert(double value) {
  ++n_;
  if (value == 0.0) {
    ++zero_;
    return;
  }
  const bool neg = value < 0.0;
  const double a = neg ? -value : value;
  std::uint64_t u;
  std::memcpy(&u, &a, sizeof u);
  for (;;) {
    const auto index = static_cast<std::int32_t>(u >> (52U - shift_));
    const auto& arr = neg ? ncounts_ : counts_;
    const std::int32_t off = index - (neg ? nbase_ : base_);
    if (!arr.empty() && off >= 0 &&
        off < static_cast<std::int32_t>(arr.size())) {
      ++(neg ? ncounts_ : counts_)[static_cast<std::size_t>(off)];
      return;
    }
    // Slow path: grow the bucket range (may escalate shift_, changing
    // the index map — recompute and retry).
    extend(neg, index);
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.n_ == 0) return;
  // Align to the coarser resolution; the bound combines by max, not
  // sum — bucket counts add without losing rank information.
  while (shift_ > other.shift_) escalate();
  n_ += other.n_;
  zero_ += other.zero_;
  const auto add = [&](bool negative, std::int32_t index,
                       std::uint64_t c) {
    for (;;) {
      auto& arr = negative ? ncounts_ : counts_;
      const std::int32_t off = index - (negative ? nbase_ : base_);
      if (!arr.empty() && off >= 0 &&
          off < static_cast<std::int32_t>(arr.size())) {
        arr[static_cast<std::size_t>(off)] += c;
        return;
      }
      const std::uint32_t before = shift_;
      extend(negative, index);
      if (shift_ != before) index >>= (before - shift_);
    }
  };
  const auto fold_in = [&](const std::vector<std::uint64_t>& src,
                           std::int32_t src_base, bool negative) {
    for (std::size_t i = 0; i < src.size(); ++i) {
      if (src[i] == 0) continue;
      // shift_ can escalate mid-loop; re-derive the down-shift each time.
      const std::uint32_t down = other.shift_ - shift_;
      add(negative,
          (src_base + static_cast<std::int32_t>(i)) >> down, src[i]);
    }
  };
  fold_in(other.counts_, other.base_, false);
  fold_in(other.ncounts_, other.nbase_, true);
}

double QuantileSketch::representative(bool negative,
                                      std::int32_t index) const {
  // Bucket midpoint, rebuilt from the index's bit pattern: within
  // epsilon() * |value| of every sample the bucket holds.
  const std::uint64_t lo_bits = static_cast<std::uint64_t>(index)
                                << (52U - shift_);
  const std::uint64_t hi_bits = static_cast<std::uint64_t>(index + 1)
                                << (52U - shift_);
  double lo = 0.0;
  double hi = 0.0;
  std::memcpy(&lo, &lo_bits, sizeof lo);
  std::memcpy(&hi, &hi_bits, sizeof hi);
  const double mid = lo + 0.5 * (hi - lo);
  return negative ? -mid : mid;
}

double QuantileSketch::quantile(double q) const {
  if (n_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n_)));
  rank = std::min(n_, std::max(std::uint64_t{1}, rank));
  std::uint64_t cum = 0;
  // Ascending value order: negative values from the most negative
  // (highest |value| bucket of the mirror) up, then zeros, then
  // positive values.
  for (std::size_t i = ncounts_.size(); i-- > 0;) {
    cum += ncounts_[i];
    if (cum >= rank) {
      return representative(true, nbase_ + static_cast<std::int32_t>(i));
    }
  }
  cum += zero_;
  if (cum >= rank) return 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= rank) {
      return representative(false, base_ + static_cast<std::int32_t>(i));
    }
  }
  // Unreachable for a consistent histogram (cum == n_ at the end).
  return representative(
      false, base_ + static_cast<std::int32_t>(counts_.size()) - 1);
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

Collector::Collector(const StreamOptions& options,
                     std::vector<NodeClassInfo> node_classes,
                     std::vector<Watts> idle_floor)
    : options_(options), node_classes_(std::move(node_classes)) {
  require(options_.enabled(), "Collector: streaming window must be > 0");
  require(node_classes_.size() == idle_floor.size(),
          "Collector: one idle floor per node class");
  require(!node_classes_.empty(), "Collector: node class list is empty");
  width_ = options_.window.value();
  win_end_ = width_;
  level_w_.reserve(idle_floor.size());
  for (const Watts w : idle_floor) level_w_.push_back(w.value());
  queued_.assign(node_classes_.size(), 0);
}

Collector::Live& Collector::window_at(std::uint64_t index) {
  while (live_.size() <= index) {
    const auto i = static_cast<std::uint64_t>(live_.size());
    Live lw{StreamWindow{}, QuantileSketch{options_.sketch_epsilon}};
    lw.w.index = i;
    lw.w.t0 = Seconds{static_cast<double>(i) * width_};
    lw.w.t1 = Seconds{static_cast<double>(i + 1) * width_};
    lw.w.classes.resize(node_classes_.size());
    live_.push_back(std::move(lw));
  }
  return live_[index];
}

Collector::Live& Collector::open_window() { return window_at(cur_index_); }

void Collector::close_window() {
  Live& lw = open_window();
  // Outstanding (queued + in-service) population, the state an operator
  // would sample at the boundary instant, just before boundary events.
  for (std::size_t c = 0; c < queued_.size(); ++c) {
    lw.w.classes[c].queue_depth = queued_[c];
  }
  ++cur_index_;
  win_end_ = static_cast<double>(cur_index_ + 1) * width_;
}

void Collector::accrue_to(double t) {
  const double dt = t - cur_t_;
  if (dt > 0.0) {
    Live& lw = open_window();
    for (std::size_t c = 0; c < level_w_.size(); ++c) {
      lw.w.classes[c].energy += Joules{level_w_[c] * dt};
    }
  }
  cur_t_ = t;
}

void Collector::roll_to(double t) {
  while (t >= win_end_) {
    accrue_to(win_end_);
    close_window();
  }
}

void Collector::smear_service(std::uint32_t node_class, double start,
                              double done, Watts dynamic) {
  if (done <= start) return;
  // A service interval overlaps at most ceil(service / width) + 1
  // windows; spread its busy time and dynamic energy exactly. (A start
  // sitting on a window boundary can floor into the previous window —
  // the zero overlap there is skipped.)
  auto idx = static_cast<std::uint64_t>(start / width_);
  for (; static_cast<double>(idx) * width_ < done; ++idx) {
    const double w0 = static_cast<double>(idx) * width_;
    const double w1 = static_cast<double>(idx + 1) * width_;
    const double ov = std::min(done, w1) - std::max(start, w0);
    if (ov <= 0.0) continue;
    NodeClassWindow& cw = window_at(idx).w.classes[node_class];
    cw.busy += Seconds{ov};
    cw.energy += dynamic * Seconds{ov};
  }
}

void Collector::on_arrival(Seconds t) {
  roll_to(t.value());
  ++open_window().w.arrivals;
}

void Collector::on_shed(Seconds t) {
  roll_to(t.value());
  ++open_window().w.shed;
}

void Collector::on_dispatch(std::uint32_t node_class, Seconds t,
                            Seconds start, Seconds done, Watts dynamic) {
  roll_to(t.value());
  ++open_window().w.classes[node_class].dispatched;
  ++queued_[node_class];
  smear_service(node_class, start.value(), done.value(), dynamic);
}

void Collector::on_complete(std::uint32_t node_class, Seconds t,
                            Seconds sojourn) {
  roll_to(t.value());
  Live& lw = open_window();
  ++lw.w.completions;
  ++lw.w.classes[node_class].completed;
  --queued_[node_class];
  ++lw.w.sojourn_count;
  lw.sketch.insert(sojourn.value());
}

void Collector::on_floor_delta(std::uint32_t node_class, Seconds t,
                               Watts delta) {
  roll_to(t.value());
  // The floor level changes here: bring the deferred integral up to the
  // change instant first, at the old level.
  accrue_to(t.value());
  level_w_[node_class] += delta.value();
}

void Collector::on_wake_energy(std::uint32_t node_class, Seconds t,
                               Joules lump) {
  roll_to(t.value());
  Live& lw = open_window();
  lw.w.classes[node_class].wake += lump;
  lw.w.wake += lump;
}

StreamTimeline Collector::merge_finalize(
    const std::vector<Collector*>& shards, Seconds horizon) {
  require(!shards.empty(), "merge_finalize: no shard collectors");
  const double h = horizon.value();
  for (Collector* s : shards) {
    require(s != nullptr, "merge_finalize: null shard collector");
    // Dynamic energy was smeared at dispatch; only the floor integral
    // needs to be brought up to the horizon.
    s->roll_to(h);
    s->accrue_to(h);
    require(s->node_classes_.size() == shards[0]->node_classes_.size(),
            "merge_finalize: shard node-class lists differ");
  }

  StreamTimeline tl;
  tl.window = shards[0]->options_.window;
  tl.horizon = horizon;
  // The achieved bound (power-of-two, <= the requested option) — window
  // merges below escalate it if any shard sketch had to coarsen.
  tl.sketch_epsilon = QuantileSketch{shards[0]->options_.sketch_epsilon}
                          .epsilon();
  tl.node_classes = shards[0]->node_classes_;
  for (std::size_t c = 0; c < tl.node_classes.size(); ++c) {
    tl.node_classes[c].nodes = 0;
    for (const Collector* s : shards) {
      tl.node_classes[c].nodes += s->node_classes_[c].nodes;
    }
  }

  std::size_t n_windows = 0;
  for (const Collector* s : shards) {
    n_windows = std::max(n_windows, s->live_.size());
  }
  const double width = shards[0]->width_;
  tl.windows.reserve(n_windows);
  for (std::size_t w = 0; w < n_windows; ++w) {
    StreamWindow out;
    out.index = static_cast<std::uint64_t>(w);
    out.t0 = Seconds{static_cast<double>(w) * width};
    out.t1 = Seconds{static_cast<double>(w + 1) * width};
    out.classes.resize(tl.node_classes.size());
    QuantileSketch sketch{shards[0]->options_.sketch_epsilon};
    for (Collector* s : shards) {
      if (w >= s->live_.size()) continue;
      const Live& lw = s->live_[w];
      out.arrivals += lw.w.arrivals;
      out.completions += lw.w.completions;
      out.shed += lw.w.shed;
      out.sojourn_count += lw.w.sojourn_count;
      for (std::size_t c = 0; c < out.classes.size(); ++c) {
        NodeClassWindow& oc = out.classes[c];
        const NodeClassWindow& sc = lw.w.classes[c];
        oc.dispatched += sc.dispatched;
        oc.completed += sc.completed;
        oc.busy += sc.busy;
        oc.queue_depth += sc.queue_depth;
        oc.energy += sc.energy;
        oc.wake += sc.wake;
      }
      sketch.merge(lw.sketch);
    }
    const double span =
        std::max(0.0, std::min(h, out.t1.value()) - out.t0.value());
    for (std::size_t c = 0; c < out.classes.size(); ++c) {
      NodeClassWindow& oc = out.classes[c];
      const double cap = static_cast<double>(tl.node_classes[c].nodes) * span;
      oc.utilization = cap > 0.0 ? oc.busy.value() / cap : 0.0;
      out.energy += oc.energy;
      out.wake += oc.wake;
    }
    out.sojourn_p50 = Seconds{sketch.quantile(0.50)};
    out.sojourn_p95 = Seconds{sketch.quantile(0.95)};
    out.sojourn_p99 = Seconds{sketch.quantile(0.99)};
    tl.sketch_epsilon = std::max(tl.sketch_epsilon, sketch.epsilon());
    tl.total_energy += out.energy;
    tl.total_wake += out.wake;
    tl.windows.push_back(std::move(out));
  }
  return tl;
}

// ---------------------------------------------------------------------------
// StreamTimeline serialization
// ---------------------------------------------------------------------------

JsonValue StreamTimeline::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema_version", JsonValue::number(std::int64_t{1}));
  doc.set("kind", JsonValue::string("hcep.stream_timeline"));
  doc.set("window_s", JsonValue::number(window.value()));
  doc.set("horizon_s", JsonValue::number(horizon.value()));
  doc.set("sketch_epsilon", JsonValue::number(sketch_epsilon));
  JsonValue classes = JsonValue::array();
  for (const NodeClassInfo& c : node_classes) {
    JsonValue o = JsonValue::object();
    o.set("name", JsonValue::string(c.name));
    o.set("nodes", JsonValue::number(static_cast<std::int64_t>(c.nodes)));
    classes.push(std::move(o));
  }
  doc.set("node_classes", std::move(classes));
  JsonValue totals = JsonValue::object();
  totals.set("energy_j", JsonValue::number(total_energy.value()));
  totals.set("wake_j", JsonValue::number(total_wake.value()));
  doc.set("totals", std::move(totals));
  JsonValue rows = JsonValue::array();
  for (const StreamWindow& w : windows) {
    JsonValue o = JsonValue::object();
    o.set("index", JsonValue::number(static_cast<std::int64_t>(w.index)));
    o.set("t0_s", JsonValue::number(w.t0.value()));
    o.set("t1_s", JsonValue::number(w.t1.value()));
    o.set("arrivals",
          JsonValue::number(static_cast<std::int64_t>(w.arrivals)));
    o.set("completions",
          JsonValue::number(static_cast<std::int64_t>(w.completions)));
    o.set("shed", JsonValue::number(static_cast<std::int64_t>(w.shed)));
    o.set("energy_j", JsonValue::number(w.energy.value()));
    o.set("wake_j", JsonValue::number(w.wake.value()));
    o.set("sojourn_count",
          JsonValue::number(static_cast<std::int64_t>(w.sojourn_count)));
    o.set("sojourn_p50_s", JsonValue::number(w.sojourn_p50.value()));
    o.set("sojourn_p95_s", JsonValue::number(w.sojourn_p95.value()));
    o.set("sojourn_p99_s", JsonValue::number(w.sojourn_p99.value()));
    JsonValue per_class = JsonValue::array();
    for (const NodeClassWindow& c : w.classes) {
      JsonValue co = JsonValue::object();
      co.set("dispatched",
             JsonValue::number(static_cast<std::int64_t>(c.dispatched)));
      co.set("completed",
             JsonValue::number(static_cast<std::int64_t>(c.completed)));
      co.set("busy_s", JsonValue::number(c.busy.value()));
      co.set("utilization", JsonValue::number(c.utilization));
      co.set("queue_depth",
             JsonValue::number(static_cast<std::int64_t>(c.queue_depth)));
      co.set("energy_j", JsonValue::number(c.energy.value()));
      co.set("wake_j", JsonValue::number(c.wake.value()));
      per_class.push(std::move(co));
    }
    o.set("classes", std::move(per_class));
    rows.push(std::move(o));
  }
  doc.set("windows", std::move(rows));
  return doc;
}

StreamTimeline StreamTimeline::from_json(const JsonValue& doc) {
  require(doc.at("kind").as_string() == "hcep.stream_timeline",
          "StreamTimeline::from_json: not a stream timeline document");
  require(doc.at("schema_version").as_int() == 1,
          "StreamTimeline::from_json: unsupported schema_version");
  StreamTimeline tl;
  tl.window = Seconds{as_num(doc, "window_s")};
  tl.horizon = Seconds{as_num(doc, "horizon_s")};
  tl.sketch_epsilon = as_num(doc, "sketch_epsilon");
  const JsonValue& classes = doc.at("node_classes");
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const JsonValue& c = classes.at(i);
    tl.node_classes.push_back(
        NodeClassInfo{c.at("name").as_string(), as_count(c, "nodes")});
  }
  tl.total_energy = Joules{as_num(doc.at("totals"), "energy_j")};
  tl.total_wake = Joules{as_num(doc.at("totals"), "wake_j")};
  const JsonValue& rows = doc.at("windows");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonValue& o = rows.at(i);
    StreamWindow w;
    w.index = as_count(o, "index");
    w.t0 = Seconds{as_num(o, "t0_s")};
    w.t1 = Seconds{as_num(o, "t1_s")};
    w.arrivals = as_count(o, "arrivals");
    w.completions = as_count(o, "completions");
    w.shed = as_count(o, "shed");
    w.energy = Joules{as_num(o, "energy_j")};
    w.wake = Joules{as_num(o, "wake_j")};
    w.sojourn_count = as_count(o, "sojourn_count");
    w.sojourn_p50 = Seconds{as_num(o, "sojourn_p50_s")};
    w.sojourn_p95 = Seconds{as_num(o, "sojourn_p95_s")};
    w.sojourn_p99 = Seconds{as_num(o, "sojourn_p99_s")};
    const JsonValue& per_class = o.at("classes");
    require(per_class.size() == tl.node_classes.size(),
            "StreamTimeline::from_json: window class row count mismatch");
    for (std::size_t c = 0; c < per_class.size(); ++c) {
      const JsonValue& co = per_class.at(c);
      NodeClassWindow cw;
      cw.dispatched = as_count(co, "dispatched");
      cw.completed = as_count(co, "completed");
      cw.busy = Seconds{as_num(co, "busy_s")};
      cw.utilization = as_num(co, "utilization");
      cw.queue_depth = as_count(co, "queue_depth");
      cw.energy = Joules{as_num(co, "energy_j")};
      cw.wake = Joules{as_num(co, "wake_j")};
      w.classes.push_back(cw);
    }
    tl.windows.push_back(std::move(w));
  }
  return tl;
}

std::string StreamTimeline::csv() const {
  std::string out =
      "window,t0_s,t1_s,class,arrivals,completions,shed,dispatched,"
      "completed,busy_s,utilization,queue_depth,energy_j,wake_j,"
      "sojourn_count,sojourn_p50_s,sojourn_p95_s,sojourn_p99_s\n";
  for (const StreamWindow& w : windows) {
    const std::string prefix = std::to_string(w.index) + "," +
                               format_number(w.t0.value()) + "," +
                               format_number(w.t1.value()) + ",";
    // Aggregate row: class column empty, per-class columns empty.
    out += prefix + "," + std::to_string(w.arrivals) + "," +
           std::to_string(w.completions) + "," + std::to_string(w.shed) +
           ",,,,," + format_number(w.energy.value()) + "," +
           format_number(w.wake.value()) + "," +
           std::to_string(w.sojourn_count) + "," +
           format_number(w.sojourn_p50.value()) + "," +
           format_number(w.sojourn_p95.value()) + "," +
           format_number(w.sojourn_p99.value()) + "\n";
    for (std::size_t c = 0; c < w.classes.size(); ++c) {
      const NodeClassWindow& cw = w.classes[c];
      // Class names come from config::NodeSpec identifiers; quote them
      // anyway so a hostile name cannot corrupt the table (RFC 4180).
      std::string name = node_classes[c].name;
      if (name.find_first_of(",\"\n") != std::string::npos) {
        std::string quoted = "\"";
        for (const char ch : name) {
          if (ch == '"') quoted += '"';
          quoted += ch;
        }
        quoted += '"';
        name = quoted;
      }
      out += prefix + name + ",,,," + std::to_string(cw.dispatched) + "," +
             std::to_string(cw.completed) + "," +
             format_number(cw.busy.value()) + "," +
             format_number(cw.utilization) + "," +
             std::to_string(cw.queue_depth) + "," +
             format_number(cw.energy.value()) + "," +
             format_number(cw.wake.value()) + ",,,,\n";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

const char* to_string(DecisionRecord::Transition::Kind kind) {
  switch (kind) {
    case DecisionRecord::Transition::Kind::kSleep:
      return "sleep";
    case DecisionRecord::Transition::Kind::kDrain:
      return "drain";
    case DecisionRecord::Transition::Kind::kWake:
      return "wake";
    case DecisionRecord::Transition::Kind::kPoint:
      return "point";
  }
  return "?";
}

JsonValue DecisionRecord::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("tick", JsonValue::number(static_cast<std::int64_t>(tick)));
  o.set("shard", JsonValue::number(static_cast<std::int64_t>(shard)));
  o.set("event", JsonValue::boolean(event));
  o.set("t_s", JsonValue::number(t.value()));
  o.set("window_s", JsonValue::number(window.value()));
  JsonValue obs = JsonValue::object();
  obs.set("arrivals_per_s", JsonValue::number(arrivals_per_s));
  obs.set("power_w", JsonValue::number(observed_power.value()));
  obs.set("queued", JsonValue::number(static_cast<std::int64_t>(queued)));
  obs.set("active", JsonValue::number(static_cast<std::int64_t>(active)));
  obs.set("draining",
          JsonValue::number(static_cast<std::int64_t>(draining)));
  obs.set("sleeping",
          JsonValue::number(static_cast<std::int64_t>(sleeping)));
  obs.set("window_completed",
          JsonValue::number(static_cast<std::int64_t>(window_completed)));
  obs.set("window_shed",
          JsonValue::number(static_cast<std::int64_t>(window_shed)));
  obs.set("window_p99_s", JsonValue::number(window_p99.value()));
  o.set("observed", std::move(obs));
  JsonValue act = JsonValue::object();
  act.set("sleeps", JsonValue::number(static_cast<std::int64_t>(sleeps)));
  act.set("wakes", JsonValue::number(static_cast<std::int64_t>(wakes)));
  act.set("point_changes",
          JsonValue::number(static_cast<std::int64_t>(point_changes)));
  JsonValue trs = JsonValue::array();
  for (const Transition& tr : transitions) {
    JsonValue to = JsonValue::object();
    to.set("node", JsonValue::number(static_cast<std::int64_t>(tr.node)));
    to.set("kind", JsonValue::string(to_string(tr.kind)));
    to.set("from", JsonValue::number(static_cast<std::int64_t>(tr.from)));
    to.set("to", JsonValue::number(static_cast<std::int64_t>(tr.to)));
    trs.push(std::move(to));
  }
  act.set("transitions", std::move(trs));
  o.set("actions", std::move(act));
  JsonValue pred = JsonValue::object();
  pred.set("power_w", JsonValue::number(predicted_power.value()));
  pred.set("rate_per_s", JsonValue::number(predicted_rate_per_s));
  o.set("predicted", std::move(pred));
  JsonValue real = JsonValue::object();
  real.set("valid", JsonValue::boolean(realized_valid));
  real.set("power_w", JsonValue::number(realized_power.value()));
  real.set("rate_per_s", JsonValue::number(realized_rate_per_s));
  real.set("p99_s", JsonValue::number(realized_p99.value()));
  o.set("realized", std::move(real));
  return o;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void FlightRecorder::append(DecisionRecord record) {
  if (records_.size() == capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(std::move(record));
}

const DecisionRecord& FlightRecorder::at(std::size_t i) const {
  require(i < records_.size(), "FlightRecorder::at: index out of range");
  return records_[i];
}

DecisionRecord* FlightRecorder::last() {
  return records_.empty() ? nullptr : &records_.back();
}

JsonValue FlightRecorder::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema_version", JsonValue::number(std::int64_t{1}));
  doc.set("kind", JsonValue::string("hcep.flight_recorder"));
  doc.set("capacity",
          JsonValue::number(static_cast<std::int64_t>(capacity_)));
  doc.set("dropped", JsonValue::number(static_cast<std::int64_t>(dropped_)));
  JsonValue rows = JsonValue::array();
  for (const DecisionRecord& r : records_) rows.push(r.to_json());
  doc.set("records", std::move(rows));
  return doc;
}

FlightRecorder FlightRecorder::merge(
    const std::vector<const FlightRecorder*>& shards) {
  std::size_t capacity = 0;
  std::uint64_t dropped = 0;
  std::vector<DecisionRecord> all;
  for (const FlightRecorder* s : shards) {
    require(s != nullptr, "FlightRecorder::merge: null shard recorder");
    capacity += s->capacity_;
    dropped += s->dropped_;
    all.insert(all.end(), s->records_.begin(), s->records_.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const DecisionRecord& a, const DecisionRecord& b) {
                     if (a.t.value() != b.t.value()) {
                       return a.t.value() < b.t.value();
                     }
                     if (a.shard != b.shard) return a.shard < b.shard;
                     return a.tick < b.tick;
                   });
  FlightRecorder out{std::max<std::size_t>(1, capacity)};
  out.dropped_ = dropped;
  for (DecisionRecord& r : all) out.records_.push_back(std::move(r));
  return out;
}

// ---------------------------------------------------------------------------
// Timeline diff
// ---------------------------------------------------------------------------

JsonValue DiffEntry::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("window", JsonValue::number(static_cast<std::int64_t>(window)));
  o.set("metric", JsonValue::string(metric));
  o.set("a", JsonValue::number(a));
  o.set("b", JsonValue::number(b));
  return o;
}

std::vector<std::uint64_t> TimelineDiff::flagged_windows() const {
  std::vector<std::uint64_t> out;
  for (const DiffEntry& e : entries) {
    if (e.metric.rfind("run.", 0) == 0) continue;
    out.push_back(e.window);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

JsonValue TimelineDiff::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema_version", JsonValue::number(std::int64_t{1}));
  doc.set("kind", JsonValue::string("hcep.timeline_diff"));
  doc.set("windows_compared",
          JsonValue::number(static_cast<std::int64_t>(windows_compared)));
  doc.set("shape_mismatch", JsonValue::boolean(shape_mismatch));
  doc.set("note", JsonValue::string(note));
  doc.set("identical", JsonValue::boolean(empty()));
  JsonValue rows = JsonValue::array();
  for (const DiffEntry& e : entries) rows.push(e.to_json());
  doc.set("entries", std::move(rows));
  return doc;
}

TimelineDiff diff_timelines(const StreamTimeline& a, const StreamTimeline& b,
                            const DiffTolerances& tol) {
  TimelineDiff d;
  if (a.window.value() != b.window.value()) {
    d.shape_mismatch = true;
    d.note = "window widths differ";
    return d;
  }
  if (a.node_classes.size() != b.node_classes.size()) {
    d.shape_mismatch = true;
    d.note = "node-class lists differ";
    return d;
  }
  for (std::size_t c = 0; c < a.node_classes.size(); ++c) {
    if (a.node_classes[c].name != b.node_classes[c].name ||
        a.node_classes[c].nodes != b.node_classes[c].nodes) {
      d.shape_mismatch = true;
      d.note = "node-class lists differ";
      return d;
    }
  }

  const auto close = [&tol](double x, double y) {
    return std::abs(x - y) <=
           tol.abs + tol.rel * std::max(std::abs(x), std::abs(y));
  };
  const auto flag = [&d](std::uint64_t w, std::string metric, double x,
                         double y) {
    d.entries.push_back(DiffEntry{w, std::move(metric), x, y});
  };
  const auto check_count = [&](std::uint64_t w, const char* metric,
                               std::uint64_t x, std::uint64_t y) {
    if (x != y) {
      flag(w, metric, static_cast<double>(x), static_cast<double>(y));
    }
  };
  const auto check_value = [&](std::uint64_t w, std::string metric, double x,
                               double y) {
    if (!close(x, y)) flag(w, std::move(metric), x, y);
  };

  if (!close(a.horizon.value(), b.horizon.value())) {
    d.entries.push_back(DiffEntry{0, "run.horizon_s", a.horizon.value(),
                                  b.horizon.value()});
  }

  const std::size_t common = std::min(a.windows.size(), b.windows.size());
  d.windows_compared = static_cast<std::uint64_t>(common);
  for (std::size_t i = 0; i < common; ++i) {
    const StreamWindow& wa = a.windows[i];
    const StreamWindow& wb = b.windows[i];
    const auto w = static_cast<std::uint64_t>(i);
    check_count(w, "arrivals", wa.arrivals, wb.arrivals);
    check_count(w, "completions", wa.completions, wb.completions);
    check_count(w, "shed", wa.shed, wb.shed);
    check_count(w, "sojourn_count", wa.sojourn_count, wb.sojourn_count);
    check_value(w, "energy_j", wa.energy.value(), wb.energy.value());
    check_value(w, "wake_j", wa.wake.value(), wb.wake.value());
    check_value(w, "sojourn_p50_s", wa.sojourn_p50.value(),
                wb.sojourn_p50.value());
    check_value(w, "sojourn_p95_s", wa.sojourn_p95.value(),
                wb.sojourn_p95.value());
    check_value(w, "sojourn_p99_s", wa.sojourn_p99.value(),
                wb.sojourn_p99.value());
    for (std::size_t c = 0; c < wa.classes.size(); ++c) {
      const NodeClassWindow& ca = wa.classes[c];
      const NodeClassWindow& cb = wb.classes[c];
      const std::string& cls = a.node_classes[c].name;
      check_count(w, (cls + ".dispatched").c_str(), ca.dispatched,
                  cb.dispatched);
      check_count(w, (cls + ".completed").c_str(), ca.completed,
                  cb.completed);
      check_count(w, (cls + ".queue_depth").c_str(), ca.queue_depth,
                  cb.queue_depth);
      check_value(w, cls + ".busy_s", ca.busy.value(), cb.busy.value());
      check_value(w, cls + ".utilization", ca.utilization, cb.utilization);
      check_value(w, cls + ".energy_j", ca.energy.value(),
                  cb.energy.value());
      check_value(w, cls + ".wake_j", ca.wake.value(), cb.wake.value());
    }
  }
  for (std::size_t i = common; i < a.windows.size(); ++i) {
    flag(static_cast<std::uint64_t>(i), "missing_window", 1.0, 0.0);
  }
  for (std::size_t i = common; i < b.windows.size(); ++i) {
    flag(static_cast<std::uint64_t>(i), "missing_window", 0.0, 1.0);
  }
  return d;
}

}  // namespace hcep::obs::stream
