#include "hcep/obs/trace.hpp"

#include <array>
#include <cinttypes>
#include <cstdio>

#include "hcep/util/error.hpp"

namespace hcep::obs {

namespace {

/// Shortest decimal form that parses back to exactly `v`: deterministic
/// (replay comparison is byte-wise) and lossless (invariant checks
/// re-integrate exported power samples).
std::string format_double(double v) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", v);
  double parsed = 0.0;
  for (int precision = 1; precision <= 16; ++precision) {
    std::snprintf(buf.data(), buf.size(), "%.*g", precision, v);
    std::sscanf(buf.data(), "%lf", &parsed);
    if (parsed == v) break;
  }
  return std::string(buf.data());
}

/// RFC 4180 field quoting: wrap in double quotes when the field contains
/// a separator, quote or line break, doubling embedded quotes. Category
/// and name strings come from call sites that may embed anything.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

char phase_letter(EventType type) {
  switch (type) {
    case EventType::kBegin: return 'B';
    case EventType::kEnd: return 'E';
    case EventType::kInstant: return 'i';
    case EventType::kCounter: return 'C';
  }
  return '?';
}

EventTracer::EventTracer(std::size_t capacity) {
  require(capacity > 0, "EventTracer: zero capacity");
  ring_.resize(capacity);
}

StringId EventTracer::intern(std::string_view s) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < strings_.size(); ++i) {
    if (strings_[i] == s) return static_cast<StringId>(i);
  }
  require(strings_.size() < kNoArg, "EventTracer: string table full");
  strings_.emplace_back(s);
  return static_cast<StringId>(strings_.size() - 1);
}

const std::string& EventTracer::string_at(StringId id) const {
  std::lock_guard lock(mutex_);
  require(id < strings_.size(), "EventTracer: unknown string id");
  return strings_[id];
}

void EventTracer::record(TraceEvent ev) {
  std::lock_guard lock(mutex_);
  if (size_ == ring_.size()) ++dropped_;  // overwriting the oldest
  ring_[head_] = ev;
  head_ = (head_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
  ++recorded_;
}

void EventTracer::begin(double ts, StringId category, StringId name,
                        StringId arg_key, double arg_value) {
  record(TraceEvent{ts, EventType::kBegin, category, name, arg_key,
                    arg_value});
}

void EventTracer::end(double ts, StringId category, StringId name) {
  record(TraceEvent{ts, EventType::kEnd, category, name, kNoArg, 0.0});
}

void EventTracer::instant(double ts, StringId category, StringId name,
                          StringId arg_key, double arg_value) {
  record(TraceEvent{ts, EventType::kInstant, category, name, arg_key,
                    arg_value});
}

void EventTracer::counter(double ts, StringId category, StringId name,
                          double value) {
  record(TraceEvent{ts, EventType::kCounter, category, name, kNoArg,
                    value});
}

std::size_t EventTracer::size() const {
  std::lock_guard lock(mutex_);
  return size_;
}

std::uint64_t EventTracer::recorded() const {
  std::lock_guard lock(mutex_);
  return recorded_;
}

std::uint64_t EventTracer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> EventTracer::events() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t oldest =
      (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(oldest + i) % ring_.size()]);
  }
  return out;
}

void EventTracer::clear() {
  std::lock_guard lock(mutex_);
  head_ = 0;
  size_ = 0;
}

JsonValue EventTracer::chrome_trace() const {
  const std::vector<TraceEvent> evs = events();
  std::lock_guard lock(mutex_);
  JsonValue arr = JsonValue::array();
  for (const TraceEvent& ev : evs) {
    JsonValue one = JsonValue::object();
    one.set("name", JsonValue::string(strings_[ev.name]));
    one.set("cat", JsonValue::string(strings_[ev.category]));
    one.set("ph",
            JsonValue::string(std::string(1, phase_letter(ev.type))));
    // Chrome expects microseconds; simulated seconds scale up.
    one.set("ts", JsonValue::number(ev.ts * 1e6));
    one.set("pid", JsonValue::number(std::int64_t{0}));
    one.set("tid", JsonValue::number(std::int64_t{0}));
    if (ev.type == EventType::kCounter) {
      JsonValue args = JsonValue::object();
      args.set("value", JsonValue::number(ev.arg_value));
      one.set("args", std::move(args));
    } else if (ev.arg_key != kNoArg) {
      JsonValue args = JsonValue::object();
      args.set(strings_[ev.arg_key], JsonValue::number(ev.arg_value));
      one.set("args", std::move(args));
    }
    arr.push(std::move(one));
  }
  JsonValue root = JsonValue::object();
  root.set("traceEvents", std::move(arr));
  root.set("displayTimeUnit", JsonValue::string("ms"));
  if (dropped_ > 0) {
    root.set("droppedEvents",
             JsonValue::number(static_cast<std::int64_t>(dropped_)));
  }
  return root;
}

std::string EventTracer::chrome_trace_json() const {
  return chrome_trace().dump();
}

std::string EventTracer::jsonl() const {
  const std::vector<TraceEvent> evs = events();
  std::lock_guard lock(mutex_);
  std::string out;
  for (const TraceEvent& ev : evs) {
    out += "{\"ts\":";
    out += format_double(ev.ts);
    out += ",\"ph\":\"";
    out += phase_letter(ev.type);
    out += "\",\"cat\":\"";
    out += json_escape(strings_[ev.category]);
    out += "\",\"name\":\"";
    out += json_escape(strings_[ev.name]);
    out += '"';
    if (ev.type == EventType::kCounter || ev.arg_key != kNoArg) {
      out += ",\"arg\":{\"";
      out += ev.arg_key != kNoArg ? json_escape(strings_[ev.arg_key])
                                  : std::string("value");
      out += "\":";
      out += format_double(ev.arg_value);
      out += '}';
    }
    out += "}\n";
  }
  return out;
}

std::string EventTracer::csv() const {
  const std::vector<TraceEvent> evs = events();
  std::lock_guard lock(mutex_);
  std::string out = "ts,phase,category,name,arg_key,arg_value\n";
  for (const TraceEvent& ev : evs) {
    out += format_double(ev.ts);
    out += ',';
    out += phase_letter(ev.type);
    out += ',';
    out += csv_field(strings_[ev.category]);
    out += ',';
    out += csv_field(strings_[ev.name]);
    out += ',';
    if (ev.arg_key != kNoArg) out += csv_field(strings_[ev.arg_key]);
    out += ',';
    out += format_double(ev.arg_value);
    out += '\n';
  }
  return out;
}

}  // namespace hcep::obs
