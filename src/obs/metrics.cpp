#include "hcep/obs/metrics.hpp"

#include <algorithm>

#include "hcep/util/error.hpp"

namespace hcep::obs {

namespace {

std::uint64_t next_registry_serial() {
  static std::atomic<std::uint64_t> serial{1};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local shard cache. Keyed by the registry's process-unique
/// serial (not its address) so a registry destroyed and another allocated
/// at the same address can never alias a stale shard pointer.
struct ShardRef {
  std::uint64_t serial = 0;
  void* shard = nullptr;
};
thread_local std::vector<ShardRef> t_shards;

}  // namespace

MetricsRegistry::MetricsRegistry(std::size_t slot_capacity)
    : slot_capacity_(slot_capacity), serial_(next_registry_serial()) {
  require(slot_capacity_ > 0, "MetricsRegistry: zero slot capacity");
  // The fast path indexes descriptors_ without locking; reserving the
  // full capacity guarantees push_back never reallocates underneath it.
  descriptors_.reserve(slot_capacity_);
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  for (const ShardRef& ref : t_shards) {
    if (ref.serial == serial_) return *static_cast<Shard*>(ref.shard);
  }
  std::lock_guard lock(mutex_);
  auto shard = std::make_unique<Shard>();
  shard->u64 =
      std::make_unique<std::atomic<std::uint64_t>[]>(slot_capacity_);
  shard->f64 = std::make_unique<std::atomic<double>[]>(slot_capacity_);
  for (std::size_t i = 0; i < slot_capacity_; ++i) {
    shard->u64[i].store(0, std::memory_order_relaxed);
    shard->f64[i].store(0.0, std::memory_order_relaxed);
  }
  Shard* raw = shard.get();
  shards_.push_back(std::move(shard));
  t_shards.push_back(ShardRef{serial_, raw});
  return *raw;
}

MetricId MetricsRegistry::find_or_register(std::string_view name, Kind kind,
                                           std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < descriptors_.size(); ++i) {
    if (descriptors_[i].name != name) continue;
    require(descriptors_[i].kind == kind,
            "MetricsRegistry: metric '" + std::string(name) +
                "' re-registered with a different kind");
    require(kind != Kind::kHistogram || descriptors_[i].bounds == bounds,
            "MetricsRegistry: histogram '" + std::string(name) +
                "' re-registered with different bounds");
    return static_cast<MetricId>(i);
  }
  require(descriptors_.size() < slot_capacity_,
          "MetricsRegistry: metric capacity exhausted");

  Descriptor d;
  d.name = std::string(name);
  d.kind = kind;
  switch (kind) {
    case Kind::kCounter: {
      require(next_u64_ + 1 <= slot_capacity_,
              "MetricsRegistry: slot capacity exhausted");
      d.slot = static_cast<std::uint32_t>(next_u64_);
      next_u64_ += 1;
      break;
    }
    case Kind::kGauge: {
      gauges_.emplace_back();
      gauges_.back().store(0.0, std::memory_order_relaxed);
      d.gauge = &gauges_.back();
      break;
    }
    case Kind::kHistogram: {
      require(!bounds.empty(), "MetricsRegistry: histogram without bounds");
      require(std::is_sorted(bounds.begin(), bounds.end()) &&
                  std::adjacent_find(bounds.begin(), bounds.end()) ==
                      bounds.end(),
              "MetricsRegistry: histogram bounds must strictly ascend");
      // bounds.size() + 1 buckets (incl. overflow) plus a count slot.
      require(next_u64_ + bounds.size() + 2 <= slot_capacity_ &&
                  next_f64_ + 1 <= slot_capacity_,
              "MetricsRegistry: slot capacity exhausted");
      d.slot = static_cast<std::uint32_t>(next_u64_);
      next_u64_ += bounds.size() + 2;
      d.sum_slot = static_cast<std::uint32_t>(next_f64_);
      next_f64_ += 1;
      d.bounds = std::move(bounds);
      break;
    }
  }
  descriptors_.push_back(std::move(d));
  return static_cast<MetricId>(descriptors_.size() - 1);
}

MetricId MetricsRegistry::counter(std::string_view name) {
  return find_or_register(name, Kind::kCounter, {});
}

MetricId MetricsRegistry::gauge(std::string_view name) {
  return find_or_register(name, Kind::kGauge, {});
}

MetricId MetricsRegistry::histogram(std::string_view name,
                                    std::vector<double> bounds) {
  return find_or_register(name, Kind::kHistogram, std::move(bounds));
}

void MetricsRegistry::add(MetricId id, std::uint64_t n) {
  const Descriptor& d = descriptors_[id];
  // Only this thread writes its shard, so plain load+store (not CAS) is
  // race-free; snapshot() reads the same atomics relaxed.
  std::atomic<std::uint64_t>& slot = local_shard().u64[d.slot];
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

void MetricsRegistry::set(MetricId id, double value) {
  descriptors_[id].gauge->store(value, std::memory_order_relaxed);
}

void MetricsRegistry::observe(MetricId id, double value) {
  const Descriptor& d = descriptors_[id];
  Shard& shard = local_shard();
  const auto it =
      std::lower_bound(d.bounds.begin(), d.bounds.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - d.bounds.begin());
  std::atomic<std::uint64_t>& b = shard.u64[d.slot + bucket];
  b.store(b.load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
  std::atomic<std::uint64_t>& c =
      shard.u64[d.slot + d.bounds.size() + 1];
  c.store(c.load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
  std::atomic<double>& s = shard.f64[d.sum_slot];
  s.store(s.load(std::memory_order_relaxed) + value,
          std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot out;
  for (const Descriptor& d : descriptors_) {
    switch (d.kind) {
      case Kind::kCounter: {
        std::uint64_t total = 0;
        for (const auto& shard : shards_)
          total += shard->u64[d.slot].load(std::memory_order_relaxed);
        out.counters.emplace_back(d.name, total);
        break;
      }
      case Kind::kGauge: {
        out.gauges.emplace_back(d.name,
                                d.gauge->load(std::memory_order_relaxed));
        break;
      }
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.name = d.name;
        h.bounds = d.bounds;
        h.counts.assign(d.bounds.size() + 1, 0);
        for (const auto& shard : shards_) {
          for (std::size_t b = 0; b <= d.bounds.size(); ++b) {
            h.counts[b] +=
                shard->u64[d.slot + b].load(std::memory_order_relaxed);
          }
          h.count += shard->u64[d.slot + d.bounds.size() + 1].load(
              std::memory_order_relaxed);
          h.sum += shard->f64[d.sum_slot].load(std::memory_order_relaxed);
        }
        out.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < slot_capacity_; ++i) {
      shard->u64[i].store(0, std::memory_order_relaxed);
      shard->f64[i].store(0.0, std::memory_order_relaxed);
    }
  }
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0,
          "HistogramSnapshot::quantile: q outside [0, 1]");
  if (count == 0 || counts.empty()) return 0.0;
  const double rank = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= rank || i + 1 == counts.size()) {
      if (i >= bounds.size()) return bounds.back();  // overflow bucket
      if (i == 0) return bounds[0];  // no lower edge recorded
      const double lo = bounds[i - 1];
      const double hi = bounds[i];
      const double fraction =
          std::min(1.0, std::max(0.0, (rank - cumulative) / in_bucket));
      return lo + (hi - lo) * fraction;
    }
    cumulative += in_bucket;
  }
  return bounds.back();
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

double MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return v;
  return 0.0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

JsonValue MetricsSnapshot::to_json() const {
  JsonValue root = JsonValue::object();
  JsonValue cs = JsonValue::object();
  for (const auto& [n, v] : counters)
    cs.set(n, JsonValue::number(static_cast<std::int64_t>(v)));
  root.set("counters", std::move(cs));
  JsonValue gs = JsonValue::object();
  for (const auto& [n, v] : gauges) gs.set(n, JsonValue::number(v));
  root.set("gauges", std::move(gs));
  JsonValue hs = JsonValue::object();
  for (const auto& h : histograms) {
    JsonValue one = JsonValue::object();
    JsonValue bounds = JsonValue::array();
    for (double b : h.bounds) bounds.push(JsonValue::number(b));
    one.set("bounds", std::move(bounds));
    JsonValue counts = JsonValue::array();
    for (std::uint64_t c : h.counts)
      counts.push(JsonValue::number(static_cast<std::int64_t>(c)));
    one.set("counts", std::move(counts));
    // The +Inf remainder, spelled out so consumers need not know that
    // counts carries one more entry than bounds.
    one.set("overflow",
            JsonValue::number(static_cast<std::int64_t>(h.overflow())));
    one.set("count",
            JsonValue::number(static_cast<std::int64_t>(h.count)));
    one.set("sum", JsonValue::number(h.sum));
    hs.set(h.name, std::move(one));
  }
  root.set("histograms", std::move(hs));
  return root;
}

}  // namespace hcep::obs
