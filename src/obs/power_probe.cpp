#include "hcep/obs/power_probe.hpp"

#include <array>
#include <cstdio>

namespace hcep::obs {

PowerProbe::PowerProbe(Observer* observer, std::string_view channel)
    : observer_(observer) {
  if (observer_ != nullptr) {
    category_ = observer_->tracer.intern("power");
    channel_ = observer_->tracer.intern(channel);
  }
}

void PowerProbe::step(Seconds t, Watts level) {
  trace_.step(t, level);
  if (observer_ != nullptr) {
    observer_->tracer.counter(t.value(), category_, channel_,
                              level.value());
  }
}

Joules PowerProbe::energy(Seconds horizon) const {
  return trace_.energy(horizon);
}

Watts PowerProbe::average(Seconds horizon) const {
  return trace_.average(horizon);
}

std::vector<power::PowerSample> PowerProbe::measured_series(
    const power::MeterSpec& spec, Seconds horizon,
    std::uint64_t seed) const {
  power::PowerMeter meter(spec, seed);
  return meter.sample_series(trace_, horizon);
}

Joules PowerProbe::measured_energy(const power::MeterSpec& spec,
                                   Seconds horizon,
                                   std::uint64_t seed) const {
  power::PowerMeter meter(spec, seed);
  return meter.measure_energy(trace_, horizon);
}

std::string PowerProbe::csv() const {
  std::string out = "t_s,power_w\n";
  std::array<char, 64> buf{};
  for (const power::PowerSample& s : trace_.steps()) {
    std::snprintf(buf.data(), buf.size(), "%.12g,%.12g\n",
                  s.start.value(), s.level.value());
    out += buf.data();
  }
  return out;
}

power::PowerTrace counter_track(const EventTracer& tracer,
                                std::string_view channel) {
  power::PowerTrace out;
  for (const TraceEvent& ev : tracer.events()) {
    if (ev.type != EventType::kCounter) continue;
    if (tracer.string_at(ev.name) != channel) continue;
    out.step(Seconds{ev.ts}, Watts{ev.arg_value});
  }
  return out;
}

}  // namespace hcep::obs
