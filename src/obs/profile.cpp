#include "hcep/obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "hcep/obs/metrics.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/json.hpp"

namespace hcep::obs {

namespace {

/// Exact order statistic at quantile q over a sample vector (sorted copy).
double sample_quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

EventType phase_from_letter(char letter, std::size_t line) {
  switch (letter) {
    case 'B': return EventType::kBegin;
    case 'E': return EventType::kEnd;
    case 'i': return EventType::kInstant;
    case 'C': return EventType::kCounter;
    default:
      throw PreconditionError("read_trace_jsonl: unknown phase '" +
                              std::string(1, letter) + "' on line " +
                              std::to_string(line));
  }
}

/// flamegraph.pl frames may not contain the stack separator or spaces.
std::string folded_frame(const std::string& category,
                         const std::string& name) {
  std::string frame = category + ":" + name;
  for (char& ch : frame) {
    if (ch == ';') ch = ',';
    if (ch == ' ' || ch == '\n' || ch == '\r' || ch == '\t') ch = '_';
  }
  return frame;
}

}  // namespace

StringId Trace::intern(std::string_view s) {
  for (std::size_t i = 0; i < strings.size(); ++i) {
    if (strings[i] == s) return static_cast<StringId>(i);
  }
  require(strings.size() < EventTracer::kNoArg,
          "Trace::intern: string table full");
  strings.emplace_back(s);
  return static_cast<StringId>(strings.size() - 1);
}

const std::string& Trace::string_at(StringId id) const {
  require(id < strings.size(), "Trace::string_at: unknown string id");
  return strings[id];
}

Trace Trace::from(const EventTracer& tracer) {
  Trace out;
  out.events = tracer.events();
  out.dropped = tracer.dropped();
  // Re-intern only the ids the retained events reference, remapping the
  // events: the tracer's table may be larger than what survived the ring.
  std::map<StringId, StringId> remap;
  const auto remapped = [&](StringId id) {
    if (id == EventTracer::kNoArg) return id;
    const auto it = remap.find(id);
    if (it != remap.end()) return it->second;
    const StringId fresh = out.intern(tracer.string_at(id));
    remap.emplace(id, fresh);
    return fresh;
  };
  for (TraceEvent& ev : out.events) {
    ev.category = remapped(ev.category);
    ev.name = remapped(ev.name);
    ev.arg_key = remapped(ev.arg_key);
  }
  return out;
}

Trace read_trace_jsonl(std::string_view text) {
  Trace out;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;

    JsonValue obj;
    try {
      obj = JsonValue::parse(line);
    } catch (const PreconditionError& e) {
      throw PreconditionError("read_trace_jsonl: line " +
                              std::to_string(line_no) + ": " + e.what());
    }
    require(obj.kind() == JsonValue::Kind::kObject,
            "read_trace_jsonl: line " + std::to_string(line_no) +
                " is not an object");

    TraceEvent ev;
    ev.ts = obj.at("ts").as_number();
    const std::string& ph = obj.at("ph").as_string();
    require(ph.size() == 1, "read_trace_jsonl: line " +
                                std::to_string(line_no) +
                                ": malformed phase");
    ev.type = phase_from_letter(ph[0], line_no);
    ev.category = out.intern(obj.at("cat").as_string());
    ev.name = out.intern(obj.at("name").as_string());
    ev.arg_key = EventTracer::kNoArg;
    if (const JsonValue* arg = obj.find("arg"); arg != nullptr) {
      require(arg->kind() == JsonValue::Kind::kObject && arg->size() == 1,
              "read_trace_jsonl: line " + std::to_string(line_no) +
                  ": malformed arg");
      const auto& [key, value] = arg->fields().front();
      ev.arg_value = value.as_number();
      // Counter events export their value under the synthetic key
      // "value"; everything else carries a real argument key.
      if (ev.type != EventType::kCounter) ev.arg_key = out.intern(key);
    }
    out.events.push_back(ev);
  }
  return out;
}

std::uint64_t TraceProfile::count_of(std::string_view category,
                                     std::string_view name,
                                     char phase) const {
  for (const EventCount& c : counts) {
    if (c.phase == phase && c.category == category && c.name == name)
      return c.count;
  }
  return 0;
}

TraceProfile profile_trace(const Trace& trace) {
  TraceProfile out;
  out.events = trace.events.size();
  out.dropped = trace.dropped;
  if (trace.events.empty()) return out;
  out.horizon_s = trace.events.back().ts;

  using Key = std::pair<StringId, StringId>;  // (category, name)
  struct OpenSpan {
    Key key;
    double begin_ts = 0.0;
    bool has_wait = false;
    double wait_s = 0.0;
  };
  std::vector<OpenSpan> stack;
  std::map<Key, SpanRollup> spans;
  std::map<std::tuple<StringId, StringId, char>, std::uint64_t> census;
  std::map<Key, CounterRollup> counters;
  std::vector<double> waits;
  std::vector<double> services;

  const StringId wait_key = [&]() -> StringId {
    for (std::size_t i = 0; i < trace.strings.size(); ++i)
      if (trace.strings[i] == "wait_s") return static_cast<StringId>(i);
    return EventTracer::kNoArg;
  }();

  double last_ts = trace.events.front().ts;
  for (const TraceEvent& ev : trace.events) {
    const double delta = ev.ts - last_ts;
    last_ts = ev.ts;
    if (!stack.empty() && delta > 0.0) {
      out.critical_path_s += delta;
      spans[stack.back().key].self_s += delta;
    }

    ++census[{ev.category, ev.name, phase_letter(ev.type)}];
    const Key key{ev.category, ev.name};
    switch (ev.type) {
      case EventType::kBegin: {
        OpenSpan open;
        open.key = key;
        open.begin_ts = ev.ts;
        open.has_wait =
            ev.arg_key != EventTracer::kNoArg && ev.arg_key == wait_key;
        open.wait_s = open.has_wait ? ev.arg_value : 0.0;
        stack.push_back(open);
        break;
      }
      case EventType::kEnd: {
        // Innermost matching begin; interleaved (non-LIFO) ends close
        // their own span without disturbing the frames above it.
        std::size_t index = stack.size();
        while (index > 0 && stack[index - 1].key != key) --index;
        if (index == 0) {
          ++out.unmatched_ends;
          break;
        }
        const OpenSpan open = stack[index - 1];
        stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(index - 1));
        SpanRollup& r = spans[key];
        const double wall = ev.ts - open.begin_ts;
        if (r.count == 0) {
          r.min_s = wall;
          r.max_s = wall;
        } else {
          r.min_s = std::min(r.min_s, wall);
          r.max_s = std::max(r.max_s, wall);
        }
        ++r.count;
        r.wall_s += wall;
        if (open.has_wait) {
          r.wait_s += open.wait_s;
          waits.push_back(open.wait_s);
          services.push_back(wall);
        }
        break;
      }
      case EventType::kInstant:
        break;
      case EventType::kCounter: {
        CounterRollup& c = counters[key];
        if (c.samples == 0) {
          c.min = ev.arg_value;
          c.max = ev.arg_value;
        } else {
          c.min = std::min(c.min, ev.arg_value);
          c.max = std::max(c.max, ev.arg_value);
        }
        ++c.samples;
        c.last = ev.arg_value;
        break;
      }
    }
  }
  out.unmatched_begins = stack.size();
  out.idle_s = std::max(0.0, out.horizon_s - out.critical_path_s);

  for (auto& [key, rollup] : spans) {
    rollup.category = trace.string_at(key.first);
    rollup.name = trace.string_at(key.second);
    out.spans.push_back(std::move(rollup));
  }
  std::sort(out.spans.begin(), out.spans.end(),
            [](const SpanRollup& a, const SpanRollup& b) {
              return std::tie(a.category, a.name) <
                     std::tie(b.category, b.name);
            });

  for (const auto& [key, count] : census) {
    out.counts.push_back(EventCount{trace.string_at(std::get<0>(key)),
                                    trace.string_at(std::get<1>(key)),
                                    std::get<2>(key), count});
  }
  std::sort(out.counts.begin(), out.counts.end(),
            [](const EventCount& a, const EventCount& b) {
              return std::tie(a.category, a.name, a.phase) <
                     std::tie(b.category, b.name, b.phase);
            });

  for (auto& [key, rollup] : counters) {
    rollup.category = trace.string_at(key.first);
    rollup.name = trace.string_at(key.second);
    out.counters.push_back(std::move(rollup));
  }
  std::sort(out.counters.begin(), out.counters.end(),
            [](const CounterRollup& a, const CounterRollup& b) {
              return std::tie(a.category, a.name) <
                     std::tie(b.category, b.name);
            });

  QueueDecomposition& q = out.queue;
  q.jobs = waits.size();
  for (double w : waits) q.total_wait_s += w;
  for (double s : services) q.total_service_s += s;
  if (q.jobs > 0) {
    q.mean_wait_s = q.total_wait_s / static_cast<double>(q.jobs);
    q.mean_service_s = q.total_service_s / static_cast<double>(q.jobs);
    q.p95_wait_s = sample_quantile(waits, 0.95);
    q.p95_service_s = sample_quantile(services, 0.95);
  }
  return out;
}

std::string folded_stacks(const Trace& trace) {
  using Key = std::pair<StringId, StringId>;
  struct OpenSpan {
    Key key;
  };
  std::vector<OpenSpan> stack;
  std::map<std::string, double> self_s;  // folded path -> seconds

  const auto current_path = [&]() {
    std::string path;
    for (const OpenSpan& open : stack) {
      if (!path.empty()) path += ';';
      path += folded_frame(trace.string_at(open.key.first),
                           trace.string_at(open.key.second));
    }
    return path;
  };

  double last_ts =
      trace.events.empty() ? 0.0 : trace.events.front().ts;
  for (const TraceEvent& ev : trace.events) {
    const double delta = ev.ts - last_ts;
    last_ts = ev.ts;
    if (!stack.empty() && delta > 0.0) self_s[current_path()] += delta;

    const Key key{ev.category, ev.name};
    if (ev.type == EventType::kBegin) {
      stack.push_back(OpenSpan{key});
    } else if (ev.type == EventType::kEnd) {
      std::size_t index = stack.size();
      while (index > 0 && stack[index - 1].key != key) --index;
      if (index > 0) {
        stack.erase(stack.begin() +
                    static_cast<std::ptrdiff_t>(index - 1));
      }
    }
  }

  std::string out;
  for (const auto& [path, seconds] : self_s) {
    const auto micros = std::llround(seconds * 1e6);
    if (micros <= 0) continue;
    out += path;
    out += ' ';
    out += std::to_string(micros);
    out += '\n';
  }
  return out;
}

std::vector<std::string> counter_channels(const Trace& trace) {
  std::vector<std::string> out;
  for (const TraceEvent& ev : trace.events) {
    if (ev.type != EventType::kCounter) continue;
    const std::string& name = trace.string_at(ev.name);
    if (std::find(out.begin(), out.end(), name) == out.end())
      out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

SeriesRollup rollup_counter(const Trace& trace, std::string_view channel,
                            double interval_s, double horizon_s) {
  require(interval_s > 0.0, "rollup_counter: interval must be positive");

  // Rebuild the piecewise-constant track, mirroring PowerTrace::step
  // semantics (same-instant updates replace the level).
  struct Segment {
    double start;
    double level;
  };
  std::vector<Segment> steps;
  std::uint64_t last_sample_count = 0;
  std::vector<double> sample_ts;
  for (const TraceEvent& ev : trace.events) {
    if (ev.type != EventType::kCounter) continue;
    if (trace.string_at(ev.name) != channel) continue;
    if (!steps.empty() && steps.back().start == ev.ts) {
      steps.back().level = ev.arg_value;
    } else {
      steps.push_back(Segment{ev.ts, ev.arg_value});
    }
    sample_ts.push_back(ev.ts);
    ++last_sample_count;
  }
  require(!steps.empty(), "rollup_counter: no counter events named '" +
                              std::string(channel) + "'");

  SeriesRollup out;
  out.channel = std::string(channel);
  out.interval_s = interval_s;
  out.horizon_s =
      horizon_s > 0.0
          ? horizon_s
          : (trace.events.empty() ? 0.0 : trace.events.back().ts);
  if (out.horizon_s <= 0.0) out.horizon_s = interval_s;

  // A leading zero-level segment models [0, first step): it carries no
  // energy (matching PowerTrace::energy) but participates in the
  // min/max/p95 occupancy so partial first windows stay honest.
  if (steps.front().start > 0.0)
    steps.insert(steps.begin(), Segment{0.0, 0.0});

  const auto windows = static_cast<std::size_t>(
      std::ceil(out.horizon_s / interval_s - 1e-12));
  out.windows.reserve(windows);
  std::size_t seg = 0;
  std::size_t sample = 0;
  for (std::size_t w = 0; w < windows; ++w) {
    RollupWindow win;
    win.t0_s = static_cast<double>(w) * interval_s;
    win.t1_s = std::min(win.t0_s + interval_s, out.horizon_s);

    while (sample < sample_ts.size() && sample_ts[sample] < win.t0_s)
      ++sample;
    for (std::size_t i = sample;
         i < sample_ts.size() && sample_ts[i] < win.t1_s; ++i)
      ++win.samples;

    // Advance to the last segment starting at or before t0.
    while (seg + 1 < steps.size() && steps[seg + 1].start <= win.t0_s)
      ++seg;

    // Per-level time occupancy inside the window.
    std::vector<double> levels;
    std::vector<double> occupancy;
    double covered = 0.0;
    for (std::size_t i = seg; i < steps.size(); ++i) {
      const double seg_start = std::max(steps[i].start, win.t0_s);
      const double seg_end = std::min(
          i + 1 < steps.size() ? steps[i + 1].start : out.horizon_s,
          win.t1_s);
      if (seg_end <= seg_start) {
        if (steps[i].start >= win.t1_s) break;
        continue;
      }
      const double dur = seg_end - seg_start;
      win.energy_j += Joules{steps[i].level * dur};
      covered += dur;
      const auto found =
          std::find(levels.begin(), levels.end(), steps[i].level);
      if (found == levels.end()) {
        levels.push_back(steps[i].level);
        occupancy.push_back(dur);
      } else {
        occupancy[static_cast<std::size_t>(found - levels.begin())] += dur;
      }
    }

    if (!levels.empty()) {
      win.min = *std::min_element(levels.begin(), levels.end());
      win.max = *std::max_element(levels.begin(), levels.end());
      win.mean = covered > 0.0 ? win.energy_j.value() / covered : 0.0;

      // p95 through the histogram-snapshot estimator: one bucket per
      // distinct level, occupancy in integer nanosecond ticks.
      std::vector<std::size_t> order(levels.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return levels[a] < levels[b];
                });
      HistogramSnapshot hist;
      for (std::size_t i : order) {
        hist.bounds.push_back(levels[i]);
        const auto ticks = static_cast<std::uint64_t>(
            std::llround(occupancy[i] * 1e9));
        hist.counts.push_back(ticks);
        hist.count += ticks;
      }
      hist.counts.push_back(0);  // empty overflow bucket
      win.p95 = hist.quantile(0.95);
    }

    out.total_energy_j += win.energy_j;
    out.windows.push_back(win);
  }
  return out;
}

}  // namespace hcep::obs
