#include "hcep/obs/run_report.hpp"

#include <array>
#include <cstdio>

#include "hcep/util/error.hpp"

namespace hcep::obs {

namespace {

/// Shortest decimal form that parses back to exactly `v` — the same
/// discipline as the trace exporters, so report bytes are reproducible.
std::string format_double(double v) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", v);
  double parsed = 0.0;
  for (int precision = 1; precision <= 16; ++precision) {
    std::snprintf(buf.data(), buf.size(), "%.*g", precision, v);
    std::sscanf(buf.data(), "%lf", &parsed);
    if (parsed == v) break;
  }
  return std::string(buf.data());
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our dotted names
/// ("sim.arrival_events") map dots — and anything else invalid — to '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char ch = out[i];
    const bool alpha =
        (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch == '_' ||
        ch == ':';
    const bool digit = ch >= '0' && ch <= '9';
    if (!(alpha || (digit && i > 0))) out[i] = '_';
  }
  if (out.empty()) out = "_";
  return out;
}

JsonValue span_json(const SpanRollup& s) {
  JsonValue o = JsonValue::object();
  o.set("category", JsonValue::string(s.category));
  o.set("name", JsonValue::string(s.name));
  o.set("count", JsonValue::number(static_cast<std::int64_t>(s.count)));
  o.set("wall_s", JsonValue::number(s.wall_s));
  o.set("self_s", JsonValue::number(s.self_s));
  o.set("min_s", JsonValue::number(s.min_s));
  o.set("max_s", JsonValue::number(s.max_s));
  o.set("wait_s", JsonValue::number(s.wait_s));
  return o;
}

JsonValue count_json(const EventCount& c) {
  JsonValue o = JsonValue::object();
  o.set("category", JsonValue::string(c.category));
  o.set("name", JsonValue::string(c.name));
  o.set("phase", JsonValue::string(std::string(1, c.phase)));
  o.set("count", JsonValue::number(static_cast<std::int64_t>(c.count)));
  return o;
}

JsonValue counter_json(const CounterRollup& c) {
  JsonValue o = JsonValue::object();
  o.set("category", JsonValue::string(c.category));
  o.set("name", JsonValue::string(c.name));
  o.set("samples",
        JsonValue::number(static_cast<std::int64_t>(c.samples)));
  o.set("min", JsonValue::number(c.min));
  o.set("max", JsonValue::number(c.max));
  o.set("last", JsonValue::number(c.last));
  return o;
}

JsonValue queue_json(const QueueDecomposition& q) {
  JsonValue o = JsonValue::object();
  o.set("jobs", JsonValue::number(static_cast<std::int64_t>(q.jobs)));
  o.set("total_wait_s", JsonValue::number(q.total_wait_s));
  o.set("total_service_s", JsonValue::number(q.total_service_s));
  o.set("mean_wait_s", JsonValue::number(q.mean_wait_s));
  o.set("mean_service_s", JsonValue::number(q.mean_service_s));
  o.set("p95_wait_s", JsonValue::number(q.p95_wait_s));
  o.set("p95_service_s", JsonValue::number(q.p95_service_s));
  return o;
}

JsonValue window_json(const RollupWindow& w) {
  JsonValue o = JsonValue::object();
  o.set("t0_s", JsonValue::number(w.t0_s));
  o.set("t1_s", JsonValue::number(w.t1_s));
  o.set("samples",
        JsonValue::number(static_cast<std::int64_t>(w.samples)));
  o.set("min", JsonValue::number(w.min));
  o.set("mean", JsonValue::number(w.mean));
  o.set("max", JsonValue::number(w.max));
  o.set("p95", JsonValue::number(w.p95));
  o.set("energy_j", JsonValue::number(w.energy_j.value()));
  return o;
}

JsonValue rollup_json(const SeriesRollup& r) {
  JsonValue o = JsonValue::object();
  o.set("channel", JsonValue::string(r.channel));
  o.set("interval_s", JsonValue::number(r.interval_s));
  o.set("horizon_s", JsonValue::number(r.horizon_s));
  o.set("total_energy_j", JsonValue::number(r.total_energy_j.value()));
  JsonValue windows = JsonValue::array();
  for (const RollupWindow& w : r.windows) windows.push(window_json(w));
  o.set("windows", std::move(windows));
  return o;
}

}  // namespace

std::vector<std::string> RunReport::warnings() const {
  std::vector<std::string> out;
  if (profile.dropped > 0) {
    out.push_back("trace ring dropped " + std::to_string(profile.dropped) +
                  " events; profile and rollups are incomplete (raise the "
                  "tracer capacity or use the streaming timeline)");
  }
  if (flight.dropped() > 0) {
    out.push_back("flight recorder evicted " +
                  std::to_string(flight.dropped()) +
                  " decision records (raise "
                  "ControlOptions::flight_capacity)");
  }
  return out;
}

JsonValue RunReport::to_json() const {
  JsonValue root = JsonValue::object();
  root.set("schema_version", JsonValue::number(std::int64_t{1}));
  root.set("title", JsonValue::string(title));
  // Warnings (and the streamed sections below) are additive: reports
  // from runs without drops or streaming keep their historic bytes.
  const std::vector<std::string> warns = warnings();
  if (!warns.empty()) {
    JsonValue arr = JsonValue::array();
    for (const std::string& w : warns) arr.push(JsonValue::string(w));
    root.set("warnings", std::move(arr));
  }

  JsonValue prof = JsonValue::object();
  prof.set("events",
           JsonValue::number(static_cast<std::int64_t>(profile.events)));
  prof.set("dropped",
           JsonValue::number(static_cast<std::int64_t>(profile.dropped)));
  prof.set("horizon_s", JsonValue::number(profile.horizon_s));
  prof.set("critical_path_s", JsonValue::number(profile.critical_path_s));
  prof.set("idle_s", JsonValue::number(profile.idle_s));
  prof.set("unmatched_begins",
           JsonValue::number(
               static_cast<std::int64_t>(profile.unmatched_begins)));
  prof.set("unmatched_ends",
           JsonValue::number(
               static_cast<std::int64_t>(profile.unmatched_ends)));
  JsonValue spans = JsonValue::array();
  for (const SpanRollup& s : profile.spans) spans.push(span_json(s));
  prof.set("spans", std::move(spans));
  JsonValue counts = JsonValue::array();
  for (const EventCount& c : profile.counts) counts.push(count_json(c));
  prof.set("counts", std::move(counts));
  JsonValue counters = JsonValue::array();
  for (const CounterRollup& c : profile.counters)
    counters.push(counter_json(c));
  prof.set("counters", std::move(counters));
  prof.set("queue", queue_json(profile.queue));
  root.set("profile", std::move(prof));

  JsonValue rollup_arr = JsonValue::array();
  for (const SeriesRollup& r : rollups) rollup_arr.push(rollup_json(r));
  root.set("rollups", std::move(rollup_arr));

  root.set("metrics", metrics.to_json());
  if (!timeline.empty()) root.set("stream", timeline.to_json());
  if (!flight.empty() || flight.dropped() > 0) {
    root.set("flight", flight.to_json());
  }
  return root;
}

RunReport make_run_report(const Trace& trace, std::string title,
                          double interval_s,
                          const MetricsSnapshot* metrics) {
  require(interval_s > 0.0, "make_run_report: interval must be positive");
  RunReport report;
  report.title = std::move(title);
  report.profile = profile_trace(trace);
  for (const std::string& channel : counter_channels(trace)) {
    report.rollups.push_back(rollup_counter(trace, channel, interval_s));
  }
  if (metrics != nullptr) {
    report.metrics = *metrics;
  } else {
    // File-loaded traces have no live registry; the event census stands
    // in so Prometheus exposition still reflects the run.
    for (const EventCount& c : report.profile.counts) {
      report.metrics.counters.emplace_back(
          "trace.events." + c.category + "." + c.name + "." + c.phase,
          c.count);
    }
  }
  // Ring drops are silent data loss: surface them in the snapshot (and
  // thus the Prometheus exposition) whenever any occurred.
  if (report.profile.dropped > 0) {
    report.metrics.counters.emplace_back("trace.dropped_events",
                                         report.profile.dropped);
  }
  return report;
}

MetricsSnapshot merge_snapshots(
    const std::vector<MetricsSnapshot>& snapshots) {
  MetricsSnapshot out;
  for (const MetricsSnapshot& snap : snapshots) {
    for (const auto& [name, value] : snap.counters) {
      bool found = false;
      for (auto& [seen, total] : out.counters) {
        if (seen == name) {
          total += value;
          found = true;
          break;
        }
      }
      if (!found) out.counters.emplace_back(name, value);
    }
    for (const auto& [name, value] : snap.gauges) {
      bool found = false;
      for (auto& [seen, current] : out.gauges) {
        if (seen == name) {
          current = value;  // last writer wins, like the live registry
          found = true;
          break;
        }
      }
      if (!found) out.gauges.emplace_back(name, value);
    }
    for (const HistogramSnapshot& h : snap.histograms) {
      HistogramSnapshot* seen = nullptr;
      for (HistogramSnapshot& candidate : out.histograms) {
        if (candidate.name == h.name) {
          seen = &candidate;
          break;
        }
      }
      if (seen == nullptr) {
        out.histograms.push_back(h);
        continue;
      }
      require(seen->bounds == h.bounds,
              "merge_snapshots: histogram '" + h.name +
                  "' has mismatched bounds");
      // Equal bounds do not imply equal bucket layouts for hand-built
      // snapshots; indexing blindly would read/write out of bounds, so
      // reject the malformed pair instead.
      require(seen->counts.size() == h.counts.size(),
              "merge_snapshots: histogram '" + h.name +
                  "' has mismatched bucket layouts");
      for (std::size_t i = 0; i < h.counts.size(); ++i)
        seen->counts[i] += h.counts[i];
      seen->count += h.count;
      seen->sum += h.sum;
    }
  }
  return out;
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + format_double(value) + "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string prom = prometheus_name(h.name);
    out += "# TYPE " + prom + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      out += prom + "_bucket{le=\"" + format_double(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += prom + "_sum " + format_double(h.sum) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace hcep::obs
