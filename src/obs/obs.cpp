#include "hcep/obs/obs.hpp"

namespace hcep::obs {

namespace {
thread_local Observer* t_observer = nullptr;
std::atomic<Observer*> g_observer{nullptr};
}  // namespace

Observer* current() {
  if (t_observer != nullptr) return t_observer;
  return g_observer.load(std::memory_order_acquire);
}

void set_global(Observer* observer) {
  g_observer.store(observer, std::memory_order_release);
}

Observer* global() { return g_observer.load(std::memory_order_acquire); }

ScopedObserver::ScopedObserver(Observer& observer)
    : previous_(t_observer) {
  t_observer = &observer;
}

ScopedObserver::~ScopedObserver() { t_observer = previous_; }

}  // namespace hcep::obs
