#include "hcep/fed/router.hpp"

#include <limits>

#include "hcep/util/error.hpp"

namespace hcep::fed {

const char* route_policy_name(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kNearest: return "nearest";
    case RoutePolicy::kRoundRobin: return "round-robin";
    case RoutePolicy::kPinned: return "pinned";
    case RoutePolicy::kCheapestEnergy: return "cheapest-energy";
    case RoutePolicy::kLowestCarbon: return "lowest-carbon";
    case RoutePolicy::kSloHybrid: return "slo-hybrid";
  }
  return "unknown";
}

RoutePolicy parse_route_policy(std::string_view name) {
  if (name == "nearest") return RoutePolicy::kNearest;
  if (name == "round-robin") return RoutePolicy::kRoundRobin;
  if (name == "pinned") return RoutePolicy::kPinned;
  if (name == "cheapest-energy") return RoutePolicy::kCheapestEnergy;
  if (name == "lowest-carbon") return RoutePolicy::kLowestCarbon;
  if (name == "slo-hybrid") return RoutePolicy::kSloHybrid;
  require(false, "unknown route policy (expected nearest, round-robin, "
                 "pinned, cheapest-energy, lowest-carbon or slo-hybrid)");
  return RoutePolicy::kNearest;
}

GlobalRouter::GlobalRouter(const std::vector<Site>& sites,
                           const hw::InterSiteNetwork& network,
                           const std::vector<traffic::TrafficClass>& classes,
                           const RouterOptions& options)
    : sites_(&sites),
      network_(&network),
      classes_(&classes),
      options_(options),
      recent_(sites.size()),
      window_work_(sites.size(), 0.0) {
  require(!sites.empty(), "GlobalRouter: need at least one site");
  require(network.size() == sites.size(),
          "GlobalRouter: network size must match site count");
  require(!classes.empty(), "GlobalRouter: need at least one class");
  require(options_.pinned_site < sites.size(),
          "GlobalRouter: pinned_site out of range");
  require(options_.headroom > 0.0, "GlobalRouter: headroom must be positive");
  require(options_.transit_slack >= 0.0,
          "GlobalRouter: negative transit_slack");
  require(options_.load_window.value() > 0.0,
          "GlobalRouter: load_window must be positive");
  work_.reserve(sites.size());
  for (const Site& site : sites) {
    std::vector<double> per_class;
    per_class.reserve(classes.size());
    for (const traffic::TrafficClass& c : classes)
      per_class.push_back(
          1.0 / traffic::cluster_capacity_per_s(site.cluster, {c}));
    work_.push_back(std::move(per_class));
  }
  const std::size_t n = sites.size();
  transit_.resize(n * n);
  nearest_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = i;  // the diagonal is free; ties stay local
    for (std::size_t j = 0; j < n; ++j) {
      transit_[i * n + j] = network.transit(i, j, options_.request_payload);
      if (transit_[i * n + j] < transit_[i * n + best]) best = j;
    }
    nearest_[i] = best;
  }
}

Assignment GlobalRouter::route(std::size_t origin, std::uint32_t cls,
                               Seconds t) {
  require(origin < sites_->size(), "GlobalRouter: origin out of range");
  require(cls < classes_->size(), "GlobalRouter: class out of range");
  const std::size_t target = pick(origin, cls, t);
  if (options_.policy == RoutePolicy::kSloHybrid) {
    // Only the hybrid's headroom gate reads the sliding window; the
    // static policies skip the bookkeeping entirely.
    recent_[target].push_back(Placement{t.value(), work_[target][cls]});
    window_work_[target] += work_[target][cls];
  }
  Assignment a;
  a.index = static_cast<std::uint64_t>(log_.size());
  a.origin = static_cast<std::uint32_t>(origin);
  a.target = static_cast<std::uint32_t>(target);
  a.cls = cls;
  a.t = t;
  a.transit = transit_[origin * sites_->size() + target];
  log_.push_back(a);
  return a;
}

double GlobalRouter::load(std::size_t site, Seconds t) {
  std::deque<Placement>& window = recent_[site];
  const double cutoff = t.value() - options_.load_window.value();
  while (!window.empty() && window.front().t < cutoff) {
    window_work_[site] -= window.front().work;
    window.pop_front();
  }
  if (window.empty()) window_work_[site] = 0.0;  // flush rounding dust
  return window_work_[site];
}

std::size_t GlobalRouter::pick(std::size_t origin, std::uint32_t cls,
                               Seconds t) {
  const std::size_t n = sites_->size();
  switch (options_.policy) {
    case RoutePolicy::kPinned:
      return options_.pinned_site;
    case RoutePolicy::kRoundRobin: {
      const std::size_t target =
          static_cast<std::size_t>(rr_ % static_cast<std::uint64_t>(n));
      ++rr_;
      return target;
    }
    case RoutePolicy::kNearest:
      // Precomputed argmin over the cached transit row (the diagonal is
      // free, so this is "stay local" on every topology with transit
      // >= 0; asymmetric topologies still behave).
      return nearest_[origin];
    case RoutePolicy::kCheapestEnergy:
    case RoutePolicy::kLowestCarbon: {
      // Lexicographic argmin of (tariff at the landing instant, transit,
      // index) — price-greedy, SLO- and load-blind by design (the
      // keystone uses these as the "chase the tariff" baselines).
      std::size_t best = 0;
      double best_value = std::numeric_limits<double>::infinity();
      Seconds best_transit{std::numeric_limits<double>::infinity()};
      for (std::size_t j = 0; j < n; ++j) {
        const Seconds tr = transit_[origin * n + j];
        const PiecewiseCurve& curve =
            options_.policy == RoutePolicy::kCheapestEnergy
                ? (*sites_)[j].price
                : (*sites_)[j].carbon;
        const double value = curve.at(t + tr);
        if (value < best_value ||
            (value == best_value && tr < best_transit)) {
          best = j;
          best_value = value;
          best_transit = tr;
        }
      }
      return best;
    }
    case RoutePolicy::kSloHybrid:
      break;
  }

  // kSloHybrid. Gate 1: SLO transit feasibility — a remote site only
  // qualifies while the WAN detour leaves most of the class's latency
  // budget for actual service. The origin always qualifies (transit 0).
  const traffic::SloTarget& slo = (*classes_)[cls].slo;
  std::vector<std::size_t> allowed;
  std::vector<Seconds> allowed_transit;
  allowed.reserve(n);
  allowed_transit.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    const Seconds tr = transit_[origin * n + j];
    if (slo.enabled() &&
        tr.value() > options_.transit_slack * slo.latency.value())
      continue;
    allowed.push_back(j);
    allowed_transit.push_back(tr);
  }
  if (allowed.empty()) return origin;  // degenerate slack: stay local

  // Gate 2: load headroom — admit the placement only where the sliding
  // window stays under headroom * capacity. If every allowed site is
  // saturated, fall back to the least-loaded one (relative to its own
  // capacity) rather than violating the transit gate.
  std::vector<std::size_t> feasible;
  feasible.reserve(allowed.size());
  std::size_t least_loaded = allowed.front();
  double least_load = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < allowed.size(); ++k) {
    const std::size_t j = allowed[k];
    const double in_window = load(j, t) + work_[j][cls];
    const double utilization = in_window / options_.load_window.value();
    if (utilization <= options_.headroom) feasible.push_back(j);
    if (utilization < least_load) {
      least_load = utilization;
      least_loaded = j;
    }
  }
  if (feasible.empty()) return least_loaded;

  // Gate 3: among feasible sites, lexicographic argmin of (price at the
  // landing instant, transit, index) — spend the slack the SLO affords
  // on the cheapest energy available right now.
  std::size_t best = feasible.front();
  double best_price = std::numeric_limits<double>::infinity();
  Seconds best_transit{std::numeric_limits<double>::infinity()};
  for (const std::size_t j : feasible) {
    const Seconds tr = transit_[origin * n + j];
    const double price = (*sites_)[j].price.at(t + tr);
    if (price < best_price || (price == best_price && tr < best_transit)) {
      best = j;
      best_price = price;
      best_transit = tr;
    }
  }
  return best;
}

}  // namespace hcep::fed
