#include "hcep/fed/site.hpp"

namespace hcep::fed {

Watts Site::idle_floor() const {
  Watts floor{};
  for (const auto& group : cluster.groups)
    floor += group.spec.power.idle * static_cast<double>(group.count);
  return floor;
}

JsonValue Site::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("name", JsonValue::string(name));
  o.set("cluster", JsonValue::string(cluster.label()));
  o.set("nodes", JsonValue::number(
                     static_cast<std::int64_t>(cluster.total_nodes())));
  o.set("rack_budget_w", JsonValue::number(rack_budget.value()));
  o.set("idle_floor_w", JsonValue::number(idle_floor().value()));
  o.set("price", price.to_json());
  o.set("carbon", carbon.to_json());
  return o;
}

}  // namespace hcep::fed
