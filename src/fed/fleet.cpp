#include "hcep/fed/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "hcep/obs/obs.hpp"
#include "hcep/obs/run_report.hpp"
#include "hcep/parallel/thread_pool.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"

namespace hcep::fed {

namespace {

constexpr double kJoulesPerKwh = 3.6e6;

/// One generated-and-merged fleet arrival before routing.
struct FleetArrival {
  Seconds t{};
  std::uint32_t origin = 0;
  std::uint32_t cls = 0;
};

/// Per-origin generation: clone the site's process, drive it with the
/// origin's split of the fleet seed, draw the arrival instant first and
/// the class coin second (a fixed draw order is part of the determinism
/// contract). Streams are then merged by time with origin index as the
/// tie-break (concatenation order + stable sort).
std::vector<FleetArrival> generate_arrivals(
    const std::vector<Site>& sites,
    const std::vector<traffic::TrafficClass>& classes,
    const FleetOptions& options) {
  double total_weight = 0.0;
  for (const auto& c : classes) {
    require(c.weight > 0.0, "simulate_fleet: class weights must be positive");
    total_weight += c.weight;
  }
  std::vector<FleetArrival> merged;
  merged.reserve(sites.size() * static_cast<std::size_t>(
                                    options.requests_per_site));
  for (std::size_t o = 0; o < sites.size(); ++o) {
    auto gen = sites[o].arrivals->clone();
    Rng rng = Rng(options.seed).split(static_cast<unsigned>(o));
    Seconds t{0.0};
    for (std::uint64_t k = 0; k < options.requests_per_site; ++k) {
      t = gen->next(t, rng);
      if (!std::isfinite(t.value())) break;  // exhausted replay trace
      double coin = rng.uniform01() * total_weight;
      std::uint32_t cls = 0;
      for (std::size_t c = 0; c + 1 < classes.size(); ++c) {
        coin -= classes[c].weight;
        if (coin < 0.0) break;
        ++cls;
      }
      merged.push_back(
          FleetArrival{t, static_cast<std::uint32_t>(o), cls});
    }
  }
  const auto by_time = [](const FleetArrival& a, const FleetArrival& b) {
    return a.t < b.t;
  };
  // Single-origin streams (and degenerate multi-origin ones) are already
  // in time order; the check is one linear pass vs an n log n sort.
  if (!std::is_sorted(merged.begin(), merged.end(), by_time))
    std::stable_sort(merged.begin(), merged.end(), by_time);
  return merged;
}

}  // namespace

double FleetClassLedger::violation_fraction() const {
  if (completed == 0) return 0.0;
  return static_cast<double>(slo_violations) / static_cast<double>(completed);
}

JsonValue CostWindow::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("t0_s", JsonValue::number(t0.value()));
  o.set("t1_s", JsonValue::number(t1.value()));
  o.set("energy_j", JsonValue::number(energy.value()));
  o.set("cost_usd", JsonValue::number(cost));
  o.set("carbon_g", JsonValue::number(carbon_g));
  return o;
}

JsonValue SiteReport::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("name", JsonValue::string(name));
  o.set("routed", JsonValue::number(static_cast<std::int64_t>(routed)));
  o.set("local", JsonValue::number(static_cast<std::int64_t>(local)));
  o.set("energy_j", JsonValue::number(energy.value()));
  o.set("energy_cost_usd", JsonValue::number(energy_cost));
  o.set("carbon_g", JsonValue::number(carbon_g));
  o.set("traffic", result.to_json());
  return o;
}

JsonValue FleetClassLedger::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("name", JsonValue::string(name));
  o.set("slo_latency_s", JsonValue::number(slo.latency.value()));
  o.set("completed", JsonValue::number(static_cast<std::int64_t>(completed)));
  o.set("failed", JsonValue::number(static_cast<std::int64_t>(failed)));
  o.set("slo_violations",
        JsonValue::number(static_cast<std::int64_t>(slo_violations)));
  o.set("violation_fraction", JsonValue::number(violation_fraction()));
  o.set("mean_transit_s", JsonValue::number(mean_transit.value()));
  o.set("e2e", e2e.to_json());
  return o;
}

JsonValue FleetReport::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("schema_version", JsonValue::number(std::int64_t{1}));
  o.set("router_policy", JsonValue::string(router_policy));
  o.set("seed", JsonValue::number(static_cast<std::int64_t>(seed)));
  o.set("horizon_s", JsonValue::number(horizon.value()));
  o.set("offered", JsonValue::number(static_cast<std::int64_t>(offered)));
  o.set("completed", JsonValue::number(static_cast<std::int64_t>(completed)));
  o.set("failed", JsonValue::number(static_cast<std::int64_t>(failed)));
  o.set("cross_site",
        JsonValue::number(static_cast<std::int64_t>(cross_site)));
  o.set("energy_j", JsonValue::number(energy.value()));
  o.set("energy_cost_usd", JsonValue::number(energy_cost));
  o.set("carbon_g", JsonValue::number(carbon_g));
  JsonValue site_array = JsonValue::array();
  for (const auto& s : sites) site_array.push(s.to_json());
  o.set("sites", std::move(site_array));
  JsonValue class_array = JsonValue::array();
  for (const auto& c : classes) class_array.push(c.to_json());
  o.set("classes", std::move(class_array));
  JsonValue route_rows = JsonValue::array();
  for (const auto& row : routes) {
    JsonValue r = JsonValue::array();
    for (const std::uint64_t count : row)
      r.push(JsonValue::number(static_cast<std::int64_t>(count)));
    route_rows.push(std::move(r));
  }
  o.set("routes", std::move(route_rows));
  JsonValue window_array = JsonValue::array();
  for (const auto& w : cost_windows) window_array.push(w.to_json());
  o.set("cost_windows", std::move(window_array));
  return o;
}

FleetReport simulate_fleet(const std::vector<Site>& sites,
                           const hw::InterSiteNetwork& network,
                           const std::vector<traffic::TrafficClass>& classes,
                           const FleetOptions& options) {
  require(!sites.empty(), "simulate_fleet: need at least one site");
  require(network.size() == sites.size(),
          "simulate_fleet: network size must match site count");
  require(!classes.empty(), "simulate_fleet: need at least one class");
  require(options.requests_per_site > 0,
          "simulate_fleet: requests_per_site must be positive");
  require(options.shards > 0, "simulate_fleet: shards must be positive");
  for (const Site& site : sites)
    require(site.arrivals != nullptr,
            "simulate_fleet: every site needs an arrival process");

  const std::size_t n = sites.size();
  // A single-site federation is exactly a cluster run: every placement
  // is local, every transit zero. The fast path skips the per-request
  // routing log, the request records and the end-to-end join — the
  // ledgers fold directly from the site's per-class stats instead.
  const bool solo = n == 1;

  // Phase A: generate regional streams, merge, route globally.
  const std::vector<FleetArrival> merged =
      generate_arrivals(sites, classes, options);
  GlobalRouter router(sites, network, classes, options.router);
  std::vector<std::vector<traffic::Arrival>> assigned(n);
  std::vector<std::vector<std::uint64_t>> fleet_index(n);
  if (solo) {
    assigned[0].reserve(merged.size());
    for (const FleetArrival& a : merged)
      assigned[0].push_back(traffic::Arrival{a.t, a.cls});
  } else {
    router.reserve(merged.size());
    for (std::size_t s = 0; s < n; ++s) {
      assigned[s].reserve(merged.size() / n + merged.size() / 8 + 64);
      fleet_index[s].reserve(merged.size() / n + merged.size() / 8 + 64);
    }
    for (const FleetArrival& a : merged) {
      const Assignment asg = router.route(a.origin, a.cls, a.t);
      assigned[asg.target].push_back(
          traffic::Arrival{asg.t + asg.transit, asg.cls});
      fleet_index[asg.target].push_back(asg.index);
    }
  }
  // Differing transits can reorder landings at a target; sort each
  // site's stream by landing time, keeping fleet order on ties, and
  // carry the fleet-index join column through the same permutation.
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<traffic::Arrival>& stream = assigned[s];
    if (std::is_sorted(stream.begin(), stream.end(),
                       [](const traffic::Arrival& a,
                          const traffic::Arrival& b) { return a.t < b.t; }))
      continue;
    std::vector<std::size_t> order(stream.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&stream](std::size_t a, std::size_t b) {
                       return stream[a].t < stream[b].t;
                     });
    std::vector<traffic::Arrival> sorted_stream(stream.size());
    std::vector<std::uint64_t> sorted_index(stream.size());
    for (std::size_t k = 0; k < order.size(); ++k) {
      sorted_stream[k] = stream[order[k]];
      sorted_index[k] = fleet_index[s][order[k]];
    }
    stream = std::move(sorted_stream);
    fleet_index[s] = std::move(sorted_index);
  }

  // Phase B: replay each site's share on its own cluster. Each run is a
  // deterministic single-shard simulation; options.shards only decides
  // whether the independent runs execute serially or on the pool.
  std::vector<traffic::TrafficResult> results(n);
#if HCEP_OBS
  std::vector<obs::MetricsSnapshot> snapshots(n);
#endif
  const auto run_site = [&](std::size_t s) {
    traffic::TrafficOptions site_options;
    site_options.policy = options.policy;
    site_options.admission = options.admission;
    site_options.retry = options.retry;
    site_options.seed =
        options.seed + 0x9e3779b97f4a7c15ULL *
                           (static_cast<std::uint64_t>(s) + 1);
    site_options.shards = 1;
    site_options.control = sites[s].control;
    site_options.stream = options.stream;
    site_options.record_requests = !solo;  // solo folds from class stats
#if HCEP_OBS
    obs::Observer local;
    obs::ScopedObserver install(local);
#endif
    results[s] =
        traffic::simulate_traffic(sites[s].cluster, classes, assigned[s],
                                  site_options);
#if HCEP_OBS
    snapshots[s] = local.metrics.snapshot();
#endif
  };
  if (options.shards > 1 && n > 1) {
    parallel_for(0, n, run_site, 1);
  } else {
    for (std::size_t s = 0; s < n; ++s) run_site(s);
  }

  // Phase C: fold the per-site ledgers into the fleet report.
  FleetReport report;
  report.router_policy = route_policy_name(options.router.policy);
  report.seed = options.seed;
  report.offered = static_cast<std::uint64_t>(merged.size());
  for (std::size_t s = 0; s < n; ++s)
    report.horizon = std::max(report.horizon, results[s].makespan);

  report.routes.assign(n, std::vector<std::uint64_t>(n, 0));
  if (solo) {
    report.routes[0][0] = static_cast<std::uint64_t>(merged.size());
  } else {
    for (const Assignment& a : router.assignments()) {
      ++report.routes[a.origin][a.target];
      if (a.origin != a.target) ++report.cross_site;
    }
  }

  const bool streamed = options.stream.enabled();
  report.sites.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    const traffic::TrafficResult& r = results[s];
    SiteReport site;
    site.name = sites[s].name;
    site.routed = r.offered;
    site.local = report.routes[s][s];
    report.completed += r.completed;
    report.failed += r.failed;

    // Early finishers keep drawing their idle floor until the fleet
    // horizon; charge that tail into both the energy and cost ledgers.
    const Watts floor = sites[s].idle_floor();
    const Seconds tail = report.horizon - r.makespan;
    const Joules tail_energy = floor * tail;
    site.energy = r.energy + tail_energy;
    const double tail_cost = floor.value() / kJoulesPerKwh *
                             sites[s].price.integral(r.makespan,
                                                     report.horizon);
    const double tail_carbon = floor.value() / kJoulesPerKwh *
                               sites[s].carbon.integral(r.makespan,
                                                        report.horizon);
    if (streamed && !r.timeline.windows.empty()) {
      // Exact per-window integration: each window's energy priced at
      // the tariff at the window midpoint (clipped to the makespan the
      // integrator itself clipped to).
      double cost = 0.0;
      double carbon = 0.0;
      for (const auto& w : r.timeline.windows) {
        const double t1 = std::min(w.t1.value(), r.makespan.value());
        const Seconds mid{0.5 * (w.t0.value() + t1)};
        cost += w.energy.value() / kJoulesPerKwh * sites[s].price.at(mid);
        carbon += w.energy.value() / kJoulesPerKwh * sites[s].carbon.at(mid);
      }
      site.energy_cost = cost + tail_cost;
      site.carbon_g = carbon + tail_carbon;
    } else {
      // No timeline: price the run's energy at the period-mean tariff.
      site.energy_cost =
          r.energy.value() / kJoulesPerKwh * sites[s].price.mean() +
          tail_cost;
      site.carbon_g =
          r.energy.value() / kJoulesPerKwh * sites[s].carbon.mean() +
          tail_carbon;
    }
    report.energy += site.energy;
    report.energy_cost += site.energy_cost;
    report.carbon_g += site.carbon_g;
    site.result = std::move(results[s]);
    report.sites.push_back(std::move(site));
  }

  // Fleet cost windows: windows align across sites (all timelines start
  // at 0 with the shared width), so summing by index is well-defined.
  // The post-makespan idle tails are NOT in the windows — the window
  // sum plus the tails equals the fleet totals.
  if (streamed) {
    std::size_t max_windows = 0;
    for (const auto& site : report.sites)
      max_windows =
          std::max(max_windows, site.result.timeline.windows.size());
    report.cost_windows.resize(max_windows);
    for (std::size_t s = 0; s < n; ++s) {
      const SiteReport& site = report.sites[s];
      for (const auto& w : site.result.timeline.windows) {
        CostWindow& fleet_window = report.cost_windows[w.index];
        fleet_window.t0 = w.t0;
        fleet_window.t1 = w.t1;
        fleet_window.energy += w.energy;
        const double t1 =
            std::min(w.t1.value(), site.result.makespan.value());
        const Seconds mid{0.5 * (w.t0.value() + t1)};
        fleet_window.cost +=
            w.energy.value() / kJoulesPerKwh * sites[s].price.at(mid);
        fleet_window.carbon_g +=
            w.energy.value() / kJoulesPerKwh * sites[s].carbon.at(mid);
      }
    }
  }

  // Per-class end-to-end ledgers: join each site's terminal request
  // records back to the routing log (record index -> fleet index ->
  // assignment) and judge SLOs on transit + sojourn. Sites are folded
  // in index order, records in arrival order — a fixed fold order, so
  // the ledger is deterministic.
  report.classes.resize(classes.size());
  std::vector<std::vector<double>> e2e_samples(classes.size());
  std::vector<Seconds> transit_sum(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    FleetClassLedger& ledger = report.classes[c];
    ledger.name = report.sites.front().result.classes.size() > c
                      ? report.sites.front().result.classes[c].name
                      : "class" + std::to_string(c);
    ledger.slo = classes[c].slo;
  }
  if (solo) {
    // Zero transit everywhere: the end-to-end ledger IS the site's
    // per-class sojourn ledger.
    const auto& stats = report.sites.front().result.classes;
    for (std::size_t c = 0; c < classes.size() && c < stats.size(); ++c) {
      FleetClassLedger& ledger = report.classes[c];
      ledger.completed = stats[c].completed;
      ledger.failed = stats[c].failed;
      ledger.slo_violations = stats[c].slo_violations;
      ledger.e2e = stats[c].sojourn;
    }
  } else {
    for (std::size_t s = 0; s < n; ++s) {
      const auto& records = report.sites[s].result.requests;
      for (const traffic::RequestRecord& rec : records) {
        const Assignment& asg =
            router.assignments()[fleet_index[s][rec.index]];
        FleetClassLedger& ledger = report.classes[rec.cls];
        if (rec.failed != 0) {
          ++ledger.failed;
          continue;
        }
        ++ledger.completed;
        const Seconds e2e = asg.transit + rec.sojourn;
        transit_sum[rec.cls] += asg.transit;
        e2e_samples[rec.cls].push_back(e2e.value());
        if (ledger.slo.enabled() && e2e > ledger.slo.latency)
          ++ledger.slo_violations;
      }
    }
    for (std::size_t c = 0; c < classes.size(); ++c) {
      FleetClassLedger& ledger = report.classes[c];
      if (ledger.completed > 0)
        ledger.mean_transit =
            Seconds{transit_sum[c].value() /
                    static_cast<double>(ledger.completed)};
      ledger.e2e = traffic::LatencySummary::from_samples(e2e_samples[c]);
    }
  }

#if HCEP_OBS
  report.metrics = obs::merge_snapshots(snapshots);
#endif
  return report;
}

}  // namespace hcep::fed
