#include "hcep/fed/curves.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "hcep/util/error.hpp"
#include "hcep/util/rng.hpp"

namespace hcep::fed {

namespace {

/// Trapezoid area of the linear segment (t0, v0) -> (t1, v1).
double segment_area(double t0, double v0, double t1, double v1) {
  return 0.5 * (v0 + v1) * (t1 - t0);
}

}  // namespace

PiecewiseCurve::PiecewiseCurve()
    : PiecewiseCurve(Seconds{86400.0}, {{Seconds{0.0}, 0.0}}) {}

PiecewiseCurve::PiecewiseCurve(
    Seconds period, std::vector<std::pair<Seconds, double>> knots)
    : period_(period), knots_(std::move(knots)) {
  require(period_.value() > 0.0, "PiecewiseCurve: period must be positive");
  require(!knots_.empty(), "PiecewiseCurve: need at least one knot");
  for (std::size_t i = 0; i < knots_.size(); ++i) {
    require(knots_[i].first.value() >= 0.0 &&
                knots_[i].first.value() < period_.value(),
            "PiecewiseCurve: knot time outside [0, period)");
    require(knots_[i].second >= 0.0, "PiecewiseCurve: negative knot value");
    if (i > 0)
      require(knots_[i - 1].first < knots_[i].first,
              "PiecewiseCurve: knot times must be strictly increasing");
  }
  // Area over one period: the segments between knots plus the wrap
  // segment from the last knot to the first knot one period later.
  for (std::size_t i = 0; i + 1 < knots_.size(); ++i) {
    period_area_ +=
        segment_area(knots_[i].first.value(), knots_[i].second,
                     knots_[i + 1].first.value(), knots_[i + 1].second);
  }
  period_area_ += segment_area(
      knots_.back().first.value(), knots_.back().second,
      knots_.front().first.value() + period_.value(), knots_.front().second);
}

PiecewiseCurve PiecewiseCurve::flat(double value, Seconds period) {
  return PiecewiseCurve(period, {{Seconds{0.0}, value}});
}

double PiecewiseCurve::at_phase(double u) const {
  // u in [0, period). Find the segment whose start knot is the last one
  // at or before u; before the first knot we are on the wrap segment.
  const double t0 = knots_.front().first.value();
  if (knots_.size() == 1) return knots_.front().second;
  if (u < t0) {
    // Wrap segment viewed from the left: (last - period) -> first.
    const double a = knots_.back().first.value() - period_.value();
    const double b = t0;
    const double va = knots_.back().second;
    const double vb = knots_.front().second;
    return va + (vb - va) * (u - a) / (b - a);
  }
  std::size_t i = 0;
  while (i + 1 < knots_.size() && knots_[i + 1].first.value() <= u) ++i;
  if (i + 1 == knots_.size()) {
    // Wrap segment to the right: last -> (first + period).
    const double a = knots_.back().first.value();
    const double b = knots_.front().first.value() + period_.value();
    const double va = knots_.back().second;
    const double vb = knots_.front().second;
    if (b == a) return va;
    return va + (vb - va) * (u - a) / (b - a);
  }
  const double a = knots_[i].first.value();
  const double b = knots_[i + 1].first.value();
  const double va = knots_[i].second;
  const double vb = knots_[i + 1].second;
  return va + (vb - va) * (u - a) / (b - a);
}

double PiecewiseCurve::at(Seconds t) const {
  require(t.value() >= 0.0, "PiecewiseCurve: negative time");
  const double u = std::fmod(t.value(), period_.value());
  return at_phase(u);
}

double PiecewiseCurve::mean() const { return period_area_ / period_.value(); }

double PiecewiseCurve::prefix_integral(double u) const {
  // Trapezoid sum over [0, u]; endpoints evaluated through at_phase so
  // the wrap segments integrate exactly (the integrand is linear
  // between consecutive knot times and at the wrap boundaries).
  double area = 0.0;
  double prev_t = 0.0;
  double prev_v = at_phase(0.0);
  for (const auto& [kt, kv] : knots_) {
    const double t = kt.value();
    if (t <= prev_t) continue;
    if (t >= u) break;
    area += segment_area(prev_t, prev_v, t, kv);
    prev_t = t;
    prev_v = kv;
  }
  area += segment_area(prev_t, prev_v, u, at_phase(u == period_.value()
                                                       ? 0.0
                                                       : u));
  // at_phase(period) wraps to phase 0 by periodicity; the value there is
  // the same as at_phase(0), which the ternary above makes explicit.
  return area;
}

double PiecewiseCurve::integral(Seconds a, Seconds b) const {
  require(a.value() >= 0.0 && b.value() >= a.value(),
          "PiecewiseCurve: integral bounds must satisfy 0 <= a <= b");
  const double p = period_.value();
  const auto accumulated = [&](double t) {
    const double full = std::floor(t / p);
    return full * period_area_ + prefix_integral(t - full * p);
  };
  return accumulated(b.value()) - accumulated(a.value());
}

JsonValue PiecewiseCurve::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("period_s", JsonValue::number(period_.value()));
  JsonValue ks = JsonValue::array();
  for (const auto& [t, v] : knots_) {
    JsonValue k = JsonValue::object();
    k.set("t_s", JsonValue::number(t.value()));
    k.set("value", JsonValue::number(v));
    ks.push(std::move(k));
  }
  o.set("knots", std::move(ks));
  return o;
}

PiecewiseCurve make_diurnal_curve(double base, double swing, Seconds period,
                                  Seconds peak_at, std::uint64_t seed,
                                  double jitter, std::size_t knots) {
  require(base >= 0.0, "make_diurnal_curve: negative base");
  require(swing >= 0.0 && swing <= 1.0,
          "make_diurnal_curve: swing must lie in [0, 1]");
  require(period.value() > 0.0, "make_diurnal_curve: non-positive period");
  require(jitter >= 0.0 && jitter < 1.0,
          "make_diurnal_curve: jitter must lie in [0, 1)");
  require(knots >= 2, "make_diurnal_curve: need at least two knots");
  Rng rng(seed);
  std::vector<std::pair<Seconds, double>> pts;
  pts.reserve(knots);
  for (std::size_t k = 0; k < knots; ++k) {
    const double t =
        static_cast<double>(k) * period.value() / static_cast<double>(knots);
    const double shape =
        base * (1.0 + swing * std::cos(2.0 * std::numbers::pi *
                                       (t - peak_at.value()) /
                                       period.value()));
    const double wobble =
        jitter > 0.0 ? 1.0 + jitter * (2.0 * rng.uniform01() - 1.0) : 1.0;
    pts.emplace_back(Seconds{t}, std::max(0.0, shape * wobble));
  }
  return PiecewiseCurve(period, std::move(pts));
}

}  // namespace hcep::fed
