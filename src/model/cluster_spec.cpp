#include "hcep/model/cluster_spec.hpp"

#include "hcep/hw/catalog.hpp"
#include "hcep/util/error.hpp"

namespace hcep::model {

unsigned NodeGroup::cores() const {
  return active_cores == 0 ? spec.cores : active_cores;
}

Hertz NodeGroup::freq() const {
  return frequency.value() == 0.0 ? spec.dvfs.max() : frequency;
}

unsigned ClusterSpec::total_nodes() const {
  unsigned n = 0;
  for (const auto& g : groups) n += g.count;
  return n;
}

std::string ClusterSpec::label() const {
  std::string out;
  for (const auto& g : groups) {
    if (!out.empty()) out += ":";
    out += std::to_string(g.count) + g.spec.name;
  }
  return out.empty() ? "(empty)" : out;
}

Watts ClusterSpec::nameplate_power() const {
  Watts p = overhead_power;
  for (const auto& g : groups)
    p += g.spec.nameplate_peak * static_cast<double>(g.count);
  return p;
}

void ClusterSpec::validate() const {
  require(!groups.empty(), "ClusterSpec: no node groups");
  bool any = false;
  for (const auto& g : groups) {
    g.spec.validate();
    if (g.count > 0) any = true;
    require(g.cores() >= 1 && g.cores() <= g.spec.cores,
            "ClusterSpec: active cores out of range for " + g.spec.name);
    const Hertz f = g.freq();
    require(f >= g.spec.dvfs.min() && f <= g.spec.dvfs.max(),
            "ClusterSpec: frequency outside the DVFS ladder of " +
                g.spec.name);
  }
  require(any, "ClusterSpec: cluster has zero nodes");
}

ClusterSpec make_two_type_cluster(const hw::NodeSpec& wimpy,
                                  unsigned n_wimpy,
                                  const hw::NodeSpec& brawny,
                                  unsigned n_brawny) {
  require(n_wimpy + n_brawny > 0, "make_two_type_cluster: empty cluster");
  ClusterSpec cluster;
  if (n_wimpy > 0)
    cluster.groups.push_back(NodeGroup{wimpy, n_wimpy, 0, Hertz{}});
  if (n_brawny > 0)
    cluster.groups.push_back(NodeGroup{brawny, n_brawny, 0, Hertz{}});
  cluster.overhead_power = hw::switch_power_for(n_wimpy);
  cluster.validate();
  return cluster;
}

ClusterSpec make_a9_k10_cluster(unsigned n_a9, unsigned n_k10) {
  return make_two_type_cluster(hw::cortex_a9(), n_a9, hw::opteron_k10(),
                               n_k10);
}

}  // namespace hcep::model
