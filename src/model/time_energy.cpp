#include "hcep/model/time_energy.hpp"

#include <algorithm>

#include "hcep/util/error.hpp"

namespace hcep::model {

TimeEnergyModel::TimeEnergyModel(ClusterSpec cluster,
                                 const workload::Workload& workload)
    : cluster_(std::move(cluster)), workload_(&workload) {
  cluster_.validate();
  group_rates_.reserve(cluster_.groups.size());
  for (const auto& g : cluster_.groups) {
    require(workload_->has_node(g.spec.name),
            "TimeEnergyModel: workload '" + workload_->name +
                "' lacks demand for node type '" + g.spec.name + "'");
    const double per_node = workload::unit_throughput(
        workload_->demand_for(g.spec.name), g.spec, g.cores(), g.freq());
    const double rate = per_node * static_cast<double>(g.count);
    group_rates_.push_back(rate);
    total_rate_ += rate;
  }
  require(total_rate_ > 0.0, "TimeEnergyModel: cluster has zero throughput");
}

double TimeEnergyModel::peak_throughput() const { return total_rate_; }

TimeResult TimeEnergyModel::execution_time(double units) const {
  require(units > 0.0, "execution_time: non-positive work");
  TimeResult out;
  out.groups.reserve(cluster_.groups.size());

  for (std::size_t i = 0; i < cluster_.groups.size(); ++i) {
    const NodeGroup& g = cluster_.groups[i];
    GroupTime gt;
    gt.node_name = g.spec.name;
    if (g.count == 0) {
      out.groups.push_back(gt);
      continue;
    }
    // Rate-matched split (all types finish together up to the I/O floor).
    const double group_units = units * group_rates_[i] / total_rate_;
    gt.units_per_node = group_units / static_cast<double>(g.count);

    const workload::NodeDemand& d = workload_->demand_for(g.spec.name);
    const workload::UnitTime per_unit =
        workload::unit_time(d, g.spec, g.cores(), g.freq());
    gt.per_node.core = per_unit.core * gt.units_per_node;
    gt.per_node.mem = per_unit.mem * gt.units_per_node;
    gt.per_node.cpu = per_unit.cpu * gt.units_per_node;
    // Table 2: T_I/O = max(T_IOT, 1/lambda_I/O) / n_i — the request
    // inter-arrival floor applies to the type's aggregate I/O stream.
    const Seconds io_transfer = per_unit.io * gt.units_per_node;
    const Seconds io_floor =
        workload_->io_request_interval / static_cast<double>(g.count);
    gt.per_node.io = std::max(io_transfer, io_floor);
    gt.per_node.total = std::max(gt.per_node.cpu, gt.per_node.io);

    out.t_p = std::max(out.t_p, gt.per_node.total);
    out.groups.push_back(gt);
  }
  return out;
}

Seconds TimeEnergyModel::job_time() const {
  return execution_time(workload_->units_per_job).t_p;
}

EnergyResult TimeEnergyModel::job_energy(double units) const {
  const TimeResult time = execution_time(units);
  EnergyResult out;
  for (std::size_t i = 0; i < cluster_.groups.size(); ++i) {
    const NodeGroup& g = cluster_.groups[i];
    const GroupTime& gt = time.groups[i];
    GroupEnergy ge;
    ge.node_name = g.spec.name;
    if (g.count == 0) {
      out.groups.push_back(ge);
      continue;
    }
    const double n = static_cast<double>(g.count);
    const double cores = static_cast<double>(g.cores());
    const double dvfs = g.spec.power.dvfs_scale(g.freq(), g.spec.dvfs.max());
    const double kappa = workload_->power_scale_for(g.spec.name);

    const Seconds stall =
        std::max(Seconds{0.0}, gt.per_node.mem - gt.per_node.core);

    // Table 2 energy rows, scaled by the calibration factor.
    ge.cpu_active = g.spec.power.core_active * (cores * dvfs * kappa) *
                    gt.per_node.core * n;
    ge.cpu_stall =
        g.spec.power.core_stalled * (cores * dvfs * kappa) * stall * n;
    ge.mem = g.spec.power.mem_active * kappa * gt.per_node.mem * n;
    ge.net = g.spec.power.net_active * kappa * gt.per_node.io * n;
    // Idle floor accrues over the whole job on every node: nodes that
    // finish their share early idle until T_P.
    ge.idle = g.spec.power.idle * time.t_p * n;

    out.e_p += ge.total();
    out.groups.push_back(ge);
  }
  return out;
}

Watts TimeEnergyModel::idle_power() const {
  Watts p{0.0};
  for (const auto& g : cluster_.groups)
    p += g.spec.power.idle * static_cast<double>(g.count);
  return p;
}

Watts TimeEnergyModel::busy_power() const {
  Watts p{0.0};
  for (const auto& g : cluster_.groups) {
    if (g.count == 0) continue;
    const Watts per_node = workload::busy_power(
        workload_->demand_for(g.spec.name), g.spec, g.cores(), g.freq(),
        workload_->power_scale_for(g.spec.name));
    p += per_node * static_cast<double>(g.count);
  }
  return p;
}

power::PowerCurve TimeEnergyModel::power_curve(CurveFamily family,
                                               double curvature) const {
  switch (family) {
    case CurveFamily::kLinear:
      return power::PowerCurve::linear(idle_power(), busy_power());
    case CurveFamily::kQuadratic:
      return power::PowerCurve::quadratic(idle_power(), busy_power(),
                                          curvature);
  }
  throw PreconditionError("power_curve: unknown family");
}

Watts TimeEnergyModel::average_power(double utilization) const {
  return power_curve().at(utilization);
}

Joules TimeEnergyModel::window_energy(double utilization,
                                      Seconds window) const {
  require(utilization >= 0.0 && utilization <= 1.0,
          "window_energy: utilization outside [0, 1]");
  require(window.value() > 0.0, "window_energy: empty window");
  return average_power(utilization) * window;
}

double TimeEnergyModel::ppr(double utilization) const {
  require(utilization > 0.0 && utilization <= 1.0,
          "ppr: utilization outside (0, 1]");
  const double throughput = peak_throughput() * utilization;
  return throughput / average_power(utilization).value();
}

}  // namespace hcep::model
