#include "hcep/des/sharded.hpp"

#include <algorithm>
#include <limits>

#include "hcep/parallel/thread_pool.hpp"
#include "hcep/util/error.hpp"

namespace hcep::des {

ShardedSimulator::ShardedSimulator(std::size_t shards, Seconds lookahead)
    : outbox_(shards), post_seq_(shards, 0), lookahead_(lookahead) {
  require(shards >= 1, "ShardedSimulator: need at least one shard");
  require(lookahead.value() > 0.0,
          "ShardedSimulator: lookahead must be positive");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Simulator>());
}

void ShardedSimulator::schedule_on(std::size_t shard, Seconds t,
                                   Callback cb) {
  require(shard < shards_.size(), "ShardedSimulator: shard out of range");
  shards_[shard]->schedule_at(t, std::move(cb));
}

void ShardedSimulator::post(std::size_t from, std::size_t to, Seconds t,
                            Callback cb) {
  require(from < shards_.size() && to < shards_.size(),
          "ShardedSimulator: shard out of range");
  require(t >= shards_[from]->now() + lookahead_,
          "ShardedSimulator: post violates the lookahead contract");
  outbox_[from].push_back(Post{to, t, from, post_seq_[from]++, std::move(cb)});
}

std::size_t ShardedSimulator::flush_posts() {
  std::vector<Post> pending;
  for (auto& box : outbox_) {
    for (Post& p : box) pending.push_back(std::move(p));
    box.clear();
  }
  if (pending.empty()) return 0;
  // Deterministic delivery order — independent of which shard thread
  // finished its window first: target shard, then time, then sender,
  // then the sender's post counter.
  std::sort(pending.begin(), pending.end(),
            [](const Post& a, const Post& b) {
              if (a.to != b.to) return a.to < b.to;
              if (a.time != b.time) return a.time < b.time;
              if (a.from != b.from) return a.from < b.from;
              return a.index < b.index;
            });
  for (Post& p : pending)
    shards_[p.to]->schedule_at(p.time, std::move(p.cb));
  return pending.size();
}

void ShardedSimulator::run(bool parallel) {
  for (;;) {
    double t_min = std::numeric_limits<double>::infinity();
    for (const auto& shard : shards_) {
      if (!shard->empty())
        t_min = std::min(t_min, shard->next_event_time().value());
    }
    if (t_min == std::numeric_limits<double>::infinity()) {
      // No pending events; pending posts (from setup) still need a round.
      if (flush_posts() == 0) return;
      continue;
    }
    const Seconds window_end = Seconds{t_min} + lookahead_;
    if (parallel && shards_.size() > 1) {
      parallel_for(
          0, shards_.size(),
          [&](std::size_t i) { shards_[i]->run_before(window_end); }, 1);
    } else {
      for (auto& shard : shards_) shard->run_before(window_end);
    }
    flush_posts();
  }
}

std::uint64_t ShardedSimulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->events_processed();
  return total;
}

}  // namespace hcep::des
