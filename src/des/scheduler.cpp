// Out-of-line slow paths of CalendarScheduler. The push/pop hot paths
// live inline in scheduler.hpp; what's here runs once per bucket, per
// geometry change, or per horizon crossing — not once per event.
#include "hcep/des/scheduler.hpp"

#include <algorithm>
#include <limits>

namespace hcep::des {

void CalendarScheduler::advance_bucket() {
  cursor_ = (cursor_ + 1) & mask_;
  base_ += width_;
  cursor_heaped_ = false;
  // The bucket the cursor just left now addresses the next horizon
  // slice; cascade any overflow events that fall inside it.
  const double h = horizon();
  while (!overflow_.empty() && overflow_.front().time < h) {
    place_in_wheel(overflow_pop());
  }
}

void CalendarScheduler::settle_slow() {
  if (wheel_count_ == 0) {
    // Everything pending lives past the horizon: re-anchor the wheel at
    // the overflow minimum instead of stepping bucket by bucket.
    base_ = overflow_.front().time;
    cursor_heaped_ = false;
    const double h = horizon();
    while (!overflow_.empty() && overflow_.front().time < h) {
      place_in_wheel(overflow_pop());
    }
  }
  std::size_t steps = 0;
  while (buckets_[cursor_].empty()) {
    advance_bucket();
    // A sparse wheel (events spread over far more buckets than their
    // count justifies) means the width no longer matches the event
    // spacing; re-derive it rather than keep scanning empties.
    if (++steps > (mask_ + 1) / 2 && count_ > kInitialBuckets) {
      rebuild();
      steps = 0;
    }
  }
  if (!cursor_heaped_) {
    // Heapify rather than sort: O(n) against O(n log n), entries are
    // trivially copyable PODs, and — unlike a sorted vector — events
    // pushed into the bucket while it drains sift in at O(log n) instead
    // of an O(n) ordered insert (which turns quadratic the moment a
    // workload mixes short service delays with long timer delays and the
    // cursor bucket runs hundreds of entries deep).
    Bucket& bucket = buckets_[cursor_];
    if (bucket.size() > 1) {
      std::make_heap(bucket.begin(), bucket.end(), After{});
    }
    cursor_heaped_ = true;
  }
}

void CalendarScheduler::rebuild() {
  // Collect every pending entry; derive geometry from the actual span.
  std::vector<Entry> pending;
  pending.reserve(count_);
  for (Bucket& bucket : buckets_) {
    pending.insert(pending.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  pending.insert(pending.end(), overflow_.begin(), overflow_.end());
  overflow_.clear();
  wheel_count_ = 0;

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Entry& e : pending) {
    lo = std::min(lo, e.time);
    hi = std::max(hi, e.time);
  }

  std::size_t want = kInitialBuckets;
  const double per_bucket =
      static_cast<double>(pending.size()) / kTargetPerBucket;
  while (static_cast<double>(want) < per_bucket && want < kMaxBuckets)
    want <<= 1;
  // Bucket vectors are kept (cleared above, capacity retained): re-growing
  // 2^16 bucket allocations after every geometry change would dominate
  // the steady-state profile.
  if (want != buckets_.size()) buckets_.resize(want);
  mask_ = want - 1;
  cursor_ = 0;
  cursor_heaped_ = false;
  base_ = pending.empty() ? 0.0 : lo;
  const double span = hi - lo;
  // The wheel must cover the full pending span even when the bucket count
  // is capped: span/want, NOT span*target/n (those agree only while the
  // wanted count is uncapped — with 1M events pending and the 2^16 cap,
  // the latter would leave ~87% of the events in the overflow heap and
  // forfeit the O(1) scheduling). The nudge keeps the max event strictly
  // below the horizon.
  set_width(span > 0.0
                ? span * (1.0 + 1.0 / 1024.0) / static_cast<double>(want)
                : 1.0);

  const double h = horizon();
  for (const Entry& e : pending) {
    if (e.time >= h) {
      overflow_push(e);
    } else {
      place_in_wheel(e);
    }
  }
}

void CalendarScheduler::overflow_push(Entry e) {
  overflow_.push_back(e);
  std::push_heap(overflow_.begin(), overflow_.end(), After{});
}

CalendarScheduler::Entry CalendarScheduler::overflow_pop() {
  std::pop_heap(overflow_.begin(), overflow_.end(), After{});
  const Entry e = overflow_.back();
  overflow_.pop_back();
  return e;
}

}  // namespace hcep::des
