#include "hcep/des/simulator.hpp"

#include <utility>

#include "hcep/util/error.hpp"

namespace hcep::des {

void Simulator::schedule_at(Seconds t, EventCallback cb) {
  require(t >= now_, "Simulator::schedule_at: time lies in the past");
  require(static_cast<bool>(cb), "Simulator::schedule_at: empty callback");
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void Simulator::schedule_in(Seconds delay, EventCallback cb) {
  require(delay.value() >= 0.0, "Simulator::schedule_in: negative delay");
  schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the callback must be moved out via
  // a copy of the event before pop.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  ev.callback();
  return true;
}

void Simulator::run_until(Seconds horizon) {
  require(horizon >= now_, "Simulator::run_until: horizon in the past");
  while (!queue_.empty() && queue_.top().time <= horizon) step();
  now_ = horizon;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace hcep::des
