#include "hcep/des/simulator.hpp"

#include <utility>

#include "hcep/util/error.hpp"

namespace hcep::des {

Simulator::Simulator() {
#if HCEP_OBS
  obs_ = obs::current();
  if (obs_ != nullptr) {
    events_metric_ = obs_->metrics.counter("des.events");
    depth_metric_ = obs_->metrics.histogram(
        "des.queue_depth", {0, 1, 2, 4, 8, 16, 32, 64, 128, 256});
    time_metric_ = obs_->metrics.histogram(
        "des.event_time_s", {1e-3, 1e-2, 1e-1, 1, 10, 100, 1e3, 1e4});
  }
#endif
}

void Simulator::schedule_at(Seconds t, EventCallback cb) {
  require(t >= now_, "Simulator::schedule_at: time lies in the past");
  require(static_cast<bool>(cb), "Simulator::schedule_at: empty callback");
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void Simulator::schedule_in(Seconds delay, EventCallback cb) {
  require(delay.value() >= 0.0, "Simulator::schedule_in: negative delay");
  schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the callback must be moved out via
  // a copy of the event before pop.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++processed_;
#if HCEP_OBS
  if (obs_ != nullptr) {
    obs_->metrics.add(events_metric_);
    obs_->metrics.observe(depth_metric_,
                          static_cast<double>(queue_.size()));
    obs_->metrics.observe(time_metric_, now_.value());
  }
#endif
  ev.callback();
  return true;
}

void Simulator::run_until(Seconds horizon) {
  require(horizon >= now_, "Simulator::run_until: horizon in the past");
  while (!queue_.empty() && queue_.top().time <= horizon) step();
  now_ = horizon;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace hcep::des
