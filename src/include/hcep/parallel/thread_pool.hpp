// A small work-stealing-free thread pool plus blocked parallel_for /
// parallel_reduce helpers. The configuration-space sweeps enumerate tens of
// thousands of cluster configurations and evaluate the time-energy model on
// each; those loops are embarrassingly parallel and run through this pool.
//
// parallel_for claims chunks off a shared atomic counter: the pool receives
// one task per participating worker (plus the calling thread, which also
// claims chunks) instead of one std::function/packaged_task/future per
// block, so dispatch cost is O(threads), not O(range / block).
//
// Nested use is safe: a parallel_for or parallel_reduce issued from inside
// a pool worker executes inline on that worker instead of enqueueing onto
// — and then deadlocking against — its own queue.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hcep {

/// Fixed-size thread pool executing std::function tasks FIFO.
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// True when the calling thread is one of THIS pool's workers — the
  /// nested-parallelism guard (see file comment).
  [[nodiscard]] bool on_worker_thread() const;

  /// Enqueues a task; returns a future for its result.
  template <class F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Process-wide default pool (lazily constructed, never destroyed before
  /// main returns).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs f(i) for i in [begin, end) across the pool, workers claiming
/// contiguous chunks of at least `min_block` iterations from an atomic
/// counter. Blocks until every iteration completes; the calling thread
/// participates. Executes inline when the range is small, the pool has a
/// single thread, or the caller is itself a pool worker (nested use).
/// Exceptions from iterations are rethrown (the first one encountered);
/// remaining chunks are abandoned once an exception is recorded.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& f,
                  std::size_t min_block = 64);

/// Convenience overload on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& f,
                  std::size_t min_block = 64);

/// Blocked map-reduce: applies `map(i)` to [begin, end) and combines partial
/// results with `combine`, starting from `init` per block. Executes inline
/// when called from inside a pool worker (nested use; see parallel_for).
template <class T, class Map, class Combine>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end, T init,
                  Map map, Combine combine, std::size_t min_block = 64) {
  if (begin >= end) return init;
  const std::size_t n = end - begin;
  const std::size_t max_blocks = pool.size() * 4;
  std::size_t block = std::max(min_block, (n + max_blocks - 1) / max_blocks);
  if (n <= block || pool.size() == 1 || pool.on_worker_thread()) {
    T acc = init;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, map(i));
    return acc;
  }
  std::vector<std::future<T>> futures;
  for (std::size_t lo = begin; lo < end; lo += block) {
    const std::size_t hi = std::min(lo + block, end);
    futures.push_back(pool.submit([=]() {
      T acc = init;
      for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
      return acc;
    }));
  }
  T acc = init;
  for (auto& fut : futures) acc = combine(acc, fut.get());
  return acc;
}

}  // namespace hcep
