// Time-resolved power capture: the observability stand-in for the
// paper's Yokogawa WT210 channel per node (Fig. 4).
//
// A PowerProbe mirrors every power-level change of a simulated run into
// (a) an exact piecewise-constant power::PowerTrace and (b) a Chrome
// counter track on the bound observer's tracer, so the power timeline
// lines up under the job spans in chrome://tracing. The exact trace
// integrates to the run's true energy (the invariant the property suite
// asserts); the measured_* methods push the same trace through the
// existing power::PowerMeter emulation for WT210-realistic readings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hcep/obs/obs.hpp"
#include "hcep/power/meter.hpp"
#include "hcep/util/units.hpp"

namespace hcep::obs {

class PowerProbe {
 public:
  /// Binds to `observer` (nullptr is fine: only the local exact trace
  /// accumulates) and names the counter track, e.g. "cluster_W".
  PowerProbe(Observer* observer, std::string_view channel);

  /// Records a power-level change at simulated time `t`.
  void step(Seconds t, Watts level);

  [[nodiscard]] const power::PowerTrace& trace() const { return trace_; }

  /// Exact integral of the captured trace over [0, horizon].
  [[nodiscard]] Joules energy(Seconds horizon) const;
  [[nodiscard]] Watts average(Seconds horizon) const;

  /// The captured trace through the sampling-wattmeter emulation: the
  /// time-resolved readings and the energy the instrument would report.
  [[nodiscard]] std::vector<power::PowerSample> measured_series(
      const power::MeterSpec& spec, Seconds horizon,
      std::uint64_t seed) const;
  [[nodiscard]] Joules measured_energy(const power::MeterSpec& spec,
                                       Seconds horizon,
                                       std::uint64_t seed) const;

  /// Exact captured steps as CSV (t_s,power_w).
  [[nodiscard]] std::string csv() const;

 private:
  Observer* observer_;
  StringId category_ = 0;
  StringId channel_ = 0;
  power::PowerTrace trace_;
};

/// Rebuilds the piecewise-constant power trace recorded as counter
/// events named `channel` on `tracer` — the analysis-side inverse of
/// PowerProbe::step, used to check exported traces against model energy.
[[nodiscard]] power::PowerTrace counter_track(const EventTracer& tracer,
                                              std::string_view channel);

}  // namespace hcep::obs
