// Observability entry point: an Observer bundles a MetricsRegistry and an
// EventTracer; instrumented code asks `obs::current()` for the active
// one.
//
// Sink resolution is null by default — no observer installed means every
// instrumentation site reduces to one thread-local load, one atomic load
// and a branch, so the PR-1 sweep/simulator fast paths are untouched.
// A ScopedObserver installs an observer for the calling thread (each
// parallel campaign can trace into its own sink); set_global() installs
// a process-wide fallback that pool workers and sweep chunks report to.
//
// Compile-time kill switch: building with -DHCEP_OBS=0 (CMake option
// `HCEP_OBS`) compiles every instrumentation site out entirely; the obs
// library itself still builds so its direct API and tests remain usable.
#pragma once

#ifndef HCEP_OBS
#define HCEP_OBS 1
#endif

#include <atomic>
#include <cstddef>

#include "hcep/obs/metrics.hpp"
#include "hcep/obs/trace.hpp"

namespace hcep::obs {

struct Observer {
  explicit Observer(std::size_t trace_capacity = 1u << 16,
                    std::size_t metric_capacity = 1024)
      : metrics(metric_capacity), tracer(trace_capacity) {}

  MetricsRegistry metrics;
  EventTracer tracer;
};

/// The calling thread's observer: the thread-local override when one is
/// installed, else the process-wide fallback, else nullptr (null sink).
[[nodiscard]] Observer* current();

/// Installs/clears the process-wide fallback (not owning). Pass nullptr
/// to restore the null sink.
void set_global(Observer* observer);
[[nodiscard]] Observer* global();

/// RAII thread-local install; restores the previous override on exit.
class ScopedObserver {
 public:
  explicit ScopedObserver(Observer& observer);
  ~ScopedObserver();
  ScopedObserver(const ScopedObserver&) = delete;
  ScopedObserver& operator=(const ScopedObserver&) = delete;

 private:
  Observer* previous_;
};

}  // namespace hcep::obs

// Statement wrapper for one-line instrumentation sites; expands to
// nothing when observability is compiled out. Multi-statement sites use
// `#if HCEP_OBS` blocks directly.
#if HCEP_OBS
#define HCEP_OBS_ONLY(...) \
  do {                     \
    __VA_ARGS__;           \
  } while (0)
#else
#define HCEP_OBS_ONLY(...) \
  do {                     \
  } while (0)
#endif
