// Low-overhead metrics: counters, gauges and fixed-bucket histograms.
//
// The paper's methodology is measurement-first: perf counters plus a
// sampling wattmeter over every run. The simulated substrate needs the
// same discipline, but instrumentation must not perturb what it measures
// — sweeps evaluate tens of thousands of configurations and the DES
// processes millions of events. The registry therefore keeps one shard
// of plain slots per writing thread: the hot path is a relaxed load/store
// on the calling thread's own slot (no CAS, no lock, no false sharing
// with other writers) and snapshot() merges the shards on demand.
//
// Registration (name -> id) takes a mutex and is meant to happen once per
// run; call sites cache the returned MetricId and pass it to the
// lock-free add()/observe()/set() fast path.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hcep/util/json.hpp"

namespace hcep::obs {

/// Handle to a registered metric; stable for the registry's lifetime.
using MetricId = std::uint32_t;

/// Merged view of one histogram: `counts` has bounds.size() + 1 entries,
/// the last being the overflow bucket (values > bounds.back()).
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;  ///< inclusive upper bounds, ascending
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Count in the implicit overflow bucket — observations above
  /// bounds.back(), i.e. the Prometheus `le="+Inf"` remainder.
  [[nodiscard]] std::uint64_t overflow() const {
    return counts.empty() ? 0 : counts.back();
  }

  /// Quantile estimate for q in [0, 1], linearly interpolated within the
  /// bucket holding rank q*count. The first bucket collapses to its upper
  /// bound (no lower edge is recorded) and ranks landing in the overflow
  /// bucket return bounds.back() — both conservative, both deterministic.
  /// Returns 0 for an empty histogram. The rollup engine's p95 and the
  /// run-report latency summaries use this estimator.
  [[nodiscard]] double quantile(double q) const;
};

/// Point-in-time merge of every shard.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of a named counter (zero when absent).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  /// Value of a named gauge (zero when absent).
  [[nodiscard]] double gauge(std::string_view name) const;
  /// Named histogram, or nullptr when absent.
  [[nodiscard]] const HistogramSnapshot* histogram(
      std::string_view name) const;

  [[nodiscard]] JsonValue to_json() const;
};

class MetricsRegistry {
 public:
  /// `slot_capacity` bounds the total number of 64-bit slots (counters
  /// cost 1, a histogram with B bounds costs B + 2); fixing it up front
  /// is what lets shards be plain preallocated arrays the fast path can
  /// index without any synchronization against later registrations.
  explicit MetricsRegistry(std::size_t slot_capacity = 1024);
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register-or-lookup by name (locked; cache the id).
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  /// `bounds` are inclusive upper bucket edges, strictly ascending; an
  /// overflow bucket is added implicitly. Re-registration with different
  /// bounds throws.
  MetricId histogram(std::string_view name, std::vector<double> bounds);

  /// Lock-free fast path: bumps the calling thread's shard slot.
  void add(MetricId id, std::uint64_t n = 1);
  /// Last-writer-wins shared gauge store.
  void set(MetricId id, double value);
  /// Lock-free fast path: buckets `value` into the thread's shard.
  void observe(MetricId id, double value);

  /// Merges every shard; safe to call while writers are active (relaxed
  /// reads — the snapshot is a consistent-enough monitoring view, exact
  /// once writers are quiescent).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every shard slot and gauge (writers must be quiescent).
  void reset();

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Descriptor {
    std::string name;
    Kind kind;
    std::uint32_t slot = 0;      ///< first u64 slot (counter/histogram)
    std::uint32_t sum_slot = 0;  ///< f64 slot (histogram sum)
    /// Shared gauge cell (stable deque element address), captured at
    /// registration so the fast path never walks the deque.
    std::atomic<double>* gauge = nullptr;
    std::vector<double> bounds;
  };
  struct Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> u64;
    std::unique_ptr<std::atomic<double>[]> f64;
  };

  Shard& local_shard();
  MetricId find_or_register(std::string_view name, Kind kind,
                            std::vector<double> bounds);

  const std::size_t slot_capacity_;
  const std::uint64_t serial_;  ///< process-unique, keys thread caches

  mutable std::mutex mutex_;  ///< guards registration and the shard list
  std::vector<Descriptor> descriptors_;  ///< reserved; never reallocates
  std::size_t next_u64_ = 0;
  std::size_t next_f64_ = 0;
  std::deque<std::atomic<double>> gauges_;  ///< stable element addresses
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hcep::obs
