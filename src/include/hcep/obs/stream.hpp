// Streaming telemetry: bounded-memory windowed aggregation computed
// *during* the simulation, plus the control-plane flight recorder.
//
// The trace-centric pipeline (obs::EventTracer -> obs::Trace ->
// RunReport) reconstructs everything post-hoc from the full event log,
// which at campaign scale (ROADMAP item 1: 10^8 requests) either drops
// events or blows memory. This module is the online alternative:
//
//  - Collector ingests the traffic engine's per-event hooks and folds
//    them into fixed-width tumbling windows aligned to the DES clock.
//    Each window holds per-node-class aggregates (dispatch/completion
//    counts, busy-time utilization, queue depth, exact energy) plus
//    arrival/shed counts and p50/p95/p99 sojourn from a QuantileSketch.
//    Per-window energies are integrated from the same power deltas the
//    control plane's PowerTrace records, so they re-integrate to
//    PowerTrace::energy() within 1e-9 (tests/test_properties.cpp).
//  - QuantileSketch is a deterministic base-2 sub-bucketed histogram
//    with a hard bucket cap: relative value error <= epsilon() is a
//    proven bound (tested against exact order statistics), merging
//    shard sketches keeps the coarsest bound, and the cap is enforced
//    by deterministic resolution escalation — memory never grows with
//    the stream.
//  - FlightRecorder is the control plane's decision audit ledger: one
//    DecisionRecord per Controller tick (observed signals, actions
//    taken, per-node transitions, predicted vs realized effect one
//    window later), kept in a bounded drop-oldest ring.
//
// Determinism contract: timelines and ledgers are byte-identical across
// same-seed runs and across serial vs parallel shard execution for a
// fixed (seed, shards) pair — no wall clock, no unordered containers,
// shard merge in shard order. Everything here works with -DHCEP_OBS=OFF:
// streaming is an opt-in result artifact (traffic::TrafficOptions), not
// ambient instrumentation, so the kill switch does not apply to it.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "hcep/util/json.hpp"
#include "hcep/util/units.hpp"

namespace hcep::obs::stream {

/// Opt-in streaming configuration (carried by traffic::TrafficOptions).
struct StreamOptions {
  /// Tumbling-window width on the DES clock; <= 0 disables streaming
  /// entirely (no collector is installed, zero hot-path cost).
  Seconds window{0.0};
  /// Relative value-error bound of the per-window sojourn sketches.
  /// Shard merges keep the coarsest (max) bound; the sketch may
  /// escalate it deterministically under bucket-cap pressure.
  double sketch_epsilon = 0.005;

  [[nodiscard]] bool enabled() const { return window.value() > 0.0; }
};

/// Deterministic base-2 sub-bucketed quantile histogram (HDR style)
/// with a hard bucket cap.
///
/// Guarantee: for the exact order statistic x at rank ceil(q * count())
/// of the inserted multiset, quantile(q) returns a value v with
/// |v - x| <= epsilon() * |x|. Buckets split each power-of-two octave
/// of |value| into 2^shift equal sub-buckets straight from the double's
/// bit pattern, so insert() is O(1) integer work — no comparisons, no
/// sorting — which is what keeps the streaming collector inside the
/// <= 5% overhead gate. Zero is counted exactly; negative values use a
/// mirrored histogram. merge() sums buckets, so unlike rank-error
/// summaries the bound does NOT grow across shard merges: epsilon() is
/// the max of the two sides. If the contiguous bucket range would
/// exceed max_buckets(), resolution halves (shift - 1, adjacent
/// buckets fold pairwise) deterministically and epsilon() reports the
/// escalated bound honestly.
class QuantileSketch {
 public:
  explicit QuantileSketch(double epsilon = 0.005);

  void insert(double value);
  /// Folds another sketch in (shard merge); bounds combine by max.
  void merge(const QuantileSketch& other);

  /// Value at quantile `q` in [0, 1]; 0.0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::uint64_t count() const { return n_; }
  /// Currently proven relative value-error bound, 2^-(shift + 1).
  [[nodiscard]] double epsilon() const;
  /// Bucket-array entries currently allocated (both signs).
  [[nodiscard]] std::size_t buckets() const;
  /// Hard cardinality cap: buckets() never exceeds it.
  [[nodiscard]] static constexpr std::size_t max_buckets() { return 4096; }

 private:
  void extend(bool negative, std::int32_t index);
  void escalate();
  [[nodiscard]] double representative(bool negative,
                                      std::int32_t index) const;

  std::uint32_t shift_ = 8;  ///< sub-bucket bits per octave
  std::uint64_t n_ = 0;
  std::uint64_t zero_ = 0;   ///< exact count of inserted zeros
  /// Contiguous bucket ranges over the sub-bucket index
  /// (biased_exponent << shift | top mantissa bits) of |value|.
  std::int32_t base_ = 0;    ///< index of counts_[0] (positive values)
  std::int32_t nbase_ = 0;   ///< index of ncounts_[0] (negative values)
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> ncounts_;
};

/// Per-node-class slice of one closed window. "Node class" is a node
/// type of the run's cluster spec (one entry per present NodeGroup, in
/// spec order), the same ordinals the control plane's NodeStatus::type
/// uses.
struct NodeClassWindow {
  std::uint64_t dispatched = 0;  ///< admitted attempts sent to this class
  std::uint64_t completed = 0;
  /// Exact busy time integrated over the window (sum over the class's
  /// nodes of in-service time; utilization = busy / (nodes * width)).
  Seconds busy{};
  double utilization = 0.0;
  /// Requests queued or in service on this class at window close.
  std::uint64_t queue_depth = 0;
  /// Exact energy: idle/sleep floor plus dynamic draw integrated over
  /// the window. Summing classes and windows re-integrates the run's
  /// PowerTrace::energy() within 1e-9.
  Joules energy{};
  /// Wake-transient lumps charged in this window (not in the trace).
  Joules wake{};
};

/// One closed tumbling window.
struct StreamWindow {
  std::uint64_t index = 0;
  Seconds t0{};  ///< inclusive start (index * width)
  Seconds t1{};  ///< nominal exclusive end; integration clips to horizon
  std::uint64_t arrivals = 0;     ///< first-attempt arrivals
  std::uint64_t completions = 0;
  std::uint64_t shed = 0;         ///< shed attempts (bucket + queue)
  Joules energy{};                ///< sum of per-class energies
  Joules wake{};                  ///< sum of per-class wake lumps
  std::uint64_t sojourn_count = 0;
  Seconds sojourn_p50{};
  Seconds sojourn_p95{};
  Seconds sojourn_p99{};
  std::vector<NodeClassWindow> classes;
};

/// Node-class identity row of a timeline.
struct NodeClassInfo {
  std::string name;
  std::uint64_t nodes = 0;
};

/// The streamed run timeline: every window of one run, merged across
/// shards, byte-deterministic under to_json()/csv().
struct StreamTimeline {
  Seconds window{};   ///< tumbling-window width
  Seconds horizon{};  ///< run makespan the last window was clipped to
  /// Proven relative value-error bound of the per-window quantiles
  /// (coarsest per-shard epsilon across the shard merge).
  double sketch_epsilon = 0.0;
  std::vector<NodeClassInfo> node_classes;
  std::vector<StreamWindow> windows;
  Joules total_energy{};  ///< == sum of window energies
  Joules total_wake{};

  [[nodiscard]] bool empty() const { return windows.empty(); }
  /// Deterministic JSON document (schema_version 1, insertion-ordered
  /// keys, shortest round-trip doubles).
  [[nodiscard]] JsonValue to_json() const;
  /// Inverse of to_json(); throws PreconditionError on malformed input.
  [[nodiscard]] static StreamTimeline from_json(const JsonValue& doc);
  /// RFC 4180 CSV: one aggregate row per window (empty `class` column)
  /// followed by one row per node class.
  [[nodiscard]] std::string csv() const;
};

/// Online per-shard aggregator. The traffic engine drives the hooks in
/// DES event order. Floor power (idle/sleep level, changed only by
/// gating deltas) is integrated segment-by-segment as the clock
/// advances; each dispatch's dynamic draw and busy time are smeared
/// analytically across the windows its fixed service interval
/// [start, done) overlaps — an O(windows overlapped) update with no
/// per-request queue, so per-window energy is still an exact
/// piecewise-constant integral.
class Collector {
 public:
  /// `node_classes` is the run's global class list (names in spec
  /// order); `idle_floor` is this shard's per-class idle-power floor,
  /// the integration level before any dispatch or gating delta.
  Collector(const StreamOptions& options,
            std::vector<NodeClassInfo> node_classes,
            std::vector<Watts> idle_floor);

  void on_arrival(Seconds t);
  void on_shed(Seconds t);
  /// An admitted attempt dispatched at `t` to a node of `node_class`,
  /// serving over [start, done) at `dynamic` watts above the floor.
  void on_dispatch(std::uint32_t node_class, Seconds t, Seconds start,
                   Seconds done, Watts dynamic);
  void on_complete(std::uint32_t node_class, Seconds t, Seconds sojourn);
  /// Immediate floor change at `t` (sleep/wake gating delta).
  void on_floor_delta(std::uint32_t node_class, Seconds t, Watts delta);
  /// Wake-transient energy lump charged at `t` (not part of the trace).
  void on_wake_energy(std::uint32_t node_class, Seconds t, Joules lump);

  /// Closes the run at `horizon` and merges the shard collectors (in
  /// shard order — deterministic) into one timeline: counts and
  /// energies sum, sketches merge (coarsest error bound wins),
  /// utilization is recomputed over the merged fleet.
  [[nodiscard]] static StreamTimeline merge_finalize(
      const std::vector<Collector*>& shards, Seconds horizon);

 private:
  struct Live {
    StreamWindow w;
    QuantileSketch sketch;
  };

  /// Close windows whose end <= t (an event at exactly the boundary
  /// lands in the new window). One compare on the fast path.
  void roll_to(double t);
  /// Accrue the deferred floor-power integral [cur_t_, t] into the
  /// current window. Called on window close, floor change and finalize
  /// only — never per request.
  void accrue_to(double t);
  void smear_service(std::uint32_t node_class, double start, double done,
                     Watts dynamic);
  void close_window();
  Live& window_at(std::uint64_t index);
  Live& open_window();

  StreamOptions options_;
  std::vector<NodeClassInfo> node_classes_;
  double width_ = 0.0;
  double cur_t_ = 0.0;     ///< floor integral frontier
  double win_end_ = 0.0;   ///< (cur_index_ + 1) * width_
  std::uint64_t cur_index_ = 0;
  std::vector<double> level_w_;        ///< per-class floor draw (no dynamic)
  std::vector<std::uint64_t> queued_;  ///< per-class queued + in service
  std::vector<Live> live_;             ///< one per window, index order
};

/// One Controller tick's audit record. Observed fields are the
/// pre-actuation signals the policy saw; predicted fields are computed
/// right after its actuations; realized fields are filled at the next
/// tick — one window later — from what actually happened.
struct DecisionRecord {
  std::uint64_t tick = 0;   ///< per-shard tick ordinal (0-based)
  std::uint32_t shard = 0;
  bool event = false;       ///< event-triggered (shed congestion) tick
  Seconds t{};
  Seconds window{};         ///< span since the previous tick
  // --- observed (pre-actuation) ---
  double arrivals_per_s = 0.0;
  Watts observed_power{};   ///< conservative rack draw at tick instant
  std::uint64_t queued = 0;
  std::uint32_t active = 0;
  std::uint32_t draining = 0;
  std::uint32_t sleeping = 0;
  std::uint64_t window_completed = 0;
  std::uint64_t window_shed = 0;
  Seconds window_p99{};     ///< worst per-class p99 sojourn this window
  // --- actions taken this tick ---
  std::uint32_t sleeps = 0;
  std::uint32_t wakes = 0;
  std::uint32_t point_changes = 0;
  struct Transition {
    enum class Kind : std::uint8_t { kSleep, kDrain, kWake, kPoint };
    std::uint32_t node = 0;  ///< global node index
    Kind kind = Kind::kSleep;
    std::uint32_t from = 0;  ///< PowerState ordinal, or old point index
    std::uint32_t to = 0;
  };
  std::vector<Transition> transitions;
  // --- predicted effect (post-actuation) ---
  Watts predicted_power{};
  double predicted_rate_per_s = 0.0;  ///< aggregate active service rate
  // --- realized one window later (false on a shard's final tick) ---
  bool realized_valid = false;
  Watts realized_power{};
  double realized_rate_per_s = 0.0;   ///< completions/s next window
  Seconds realized_p99{};

  [[nodiscard]] JsonValue to_json() const;
};

[[nodiscard]] const char* to_string(DecisionRecord::Transition::Kind kind);

/// Bounded drop-oldest ring of DecisionRecords: the decision ledger of
/// one controlled run, surfaced through control::ControlSummary and
/// RunReport.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1u << 16);

  void append(DecisionRecord record);
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] const DecisionRecord& at(std::size_t i) const;
  /// Most recent record (nullptr when empty) — the engine patches its
  /// realized fields at the next tick.
  [[nodiscard]] DecisionRecord* last();
  /// Records evicted by the capacity bound (oldest-first).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] JsonValue to_json() const;

  /// Shard merge: records interleaved by (time, shard, tick) — stable
  /// and deterministic; drop counts sum; capacities sum so the merge
  /// itself never evicts.
  [[nodiscard]] static FlightRecorder merge(
      const std::vector<const FlightRecorder*>& shards);

 private:
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::deque<DecisionRecord> records_;
};

/// Tolerances of a window-by-window timeline comparison. Counts compare
/// exactly; continuous metrics pass when |a - b| <= abs + rel * max(|a|,
/// |b|).
struct DiffTolerances {
  double rel = 1e-9;
  double abs = 1e-12;
};

/// One flagged metric delta.
struct DiffEntry {
  std::uint64_t window = 0;
  std::string metric;  ///< e.g. "arrivals", "energy_j", "A9.utilization"
  double a = 0.0;
  double b = 0.0;

  [[nodiscard]] JsonValue to_json() const;
};

/// Result of diff_timelines: empty() means the runs agree window by
/// window within tolerance — the regression primitive campaign tooling
/// gates on.
struct TimelineDiff {
  std::vector<DiffEntry> entries;
  std::uint64_t windows_compared = 0;
  bool shape_mismatch = false;  ///< width/classes/window-count differ
  std::string note;             ///< human-readable shape mismatch reason

  [[nodiscard]] bool empty() const {
    return entries.empty() && !shape_mismatch;
  }
  /// Window indices with at least one flagged metric, ascending unique.
  [[nodiscard]] std::vector<std::uint64_t> flagged_windows() const;
  [[nodiscard]] JsonValue to_json() const;
};

/// Compares two timelines window by window and flags every metric delta
/// beyond `tol`. Extra windows on either side are flagged as "missing"
/// entries against zero.
[[nodiscard]] TimelineDiff diff_timelines(const StreamTimeline& a,
                                          const StreamTimeline& b,
                                          const DiffTolerances& tol = {});

}  // namespace hcep::obs::stream
