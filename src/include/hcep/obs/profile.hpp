// Telemetry analysis: turn raw EventTracer rings into attributed
// reports — the consumption layer the paper's Fig. 4 methodology implies
// (raw perf-counter/wattmeter samples are useless until an aggregation
// and attribution pass answers "where did the time and energy go?").
//
// Three pieces:
//  * Trace — a self-contained decoded trace (events + string table),
//    snapshot from a live EventTracer or read back from our own JSONL
//    exporter format;
//  * profile_trace — span reconstruction (wall/self time per
//    category:name, queue-wait vs service decomposition, a critical-path
//    estimate) plus folded-stack (flamegraph) export;
//  * rollup_counter — fixed-interval downsampling of counter tracks
//    (min/mean/max/p95 per window) with per-window energy attribution
//    that re-integrates to the exact trace energy.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hcep/obs/trace.hpp"
#include "hcep/util/units.hpp"

namespace hcep::obs {

/// A decoded trace that owns its string table: the common input of the
/// analysis layer, detached from any live tracer.
struct Trace {
  std::vector<TraceEvent> events;   ///< in recorded (time) order
  std::vector<std::string> strings; ///< indexed by StringId
  std::uint64_t dropped = 0;        ///< drop-oldest losses, if known

  /// Interns `s` into this trace's table (idempotent per string).
  StringId intern(std::string_view s);
  [[nodiscard]] const std::string& string_at(StringId id) const;

  /// Snapshot of a live tracer (retained events + interned strings).
  [[nodiscard]] static Trace from(const EventTracer& tracer);
};

/// Reader for EventTracer::jsonl() output: one JSON object per line,
/// {"ts":..,"ph":"B|E|i|C","cat":..,"name":..[,"arg":{key:value}]}.
/// Malformed lines throw PreconditionError naming the line number.
[[nodiscard]] Trace read_trace_jsonl(std::string_view text);

/// Wall/self-time rollup of one (category, name) span key.
struct SpanRollup {
  std::string category;
  std::string name;
  std::uint64_t count = 0;   ///< completed spans
  double wall_s = 0.0;       ///< sum of span durations
  double self_s = 0.0;       ///< time this key was innermost on the stack
  double min_s = 0.0;        ///< shortest completed span
  double max_s = 0.0;        ///< longest completed span
  double wait_s = 0.0;       ///< sum of "wait_s" begin args (queueing)
};

/// Event census per (category, name, phase); the round-trip tests match
/// these against the live MetricsRegistry counters.
struct EventCount {
  std::string category;
  std::string name;
  char phase = '?';  ///< B, E, i or C
  std::uint64_t count = 0;
};

/// Last-value census of one counter track.
struct CounterRollup {
  std::string category;
  std::string name;
  std::uint64_t samples = 0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;
};

/// Queue-wait vs service-time decomposition over every span that carries
/// a "wait_s" begin argument (the cluster simulator's job spans).
struct QueueDecomposition {
  std::uint64_t jobs = 0;
  double total_wait_s = 0.0;
  double total_service_s = 0.0;
  double mean_wait_s = 0.0;
  double mean_service_s = 0.0;
  double p95_wait_s = 0.0;     ///< exact order statistic over the spans
  double p95_service_s = 0.0;
};

struct TraceProfile {
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  double horizon_s = 0.0;  ///< timestamp of the last event

  std::vector<SpanRollup> spans;        ///< sorted by category, then name
  std::vector<EventCount> counts;       ///< sorted by category/name/phase
  std::vector<CounterRollup> counters;  ///< counter tracks, sorted
  QueueDecomposition queue;

  /// DES critical-path estimate: total time at least one span was open
  /// (the serialized-service lower bound on the run's makespan) and the
  /// complementary idle time up to the horizon.
  double critical_path_s = 0.0;
  double idle_s = 0.0;

  /// Ends without a matching open begin (ring truncation) and begins
  /// still open at the end of the trace.
  std::uint64_t unmatched_ends = 0;
  std::uint64_t unmatched_begins = 0;

  /// Events recorded under (category, name, phase letter); zero when
  /// absent.
  [[nodiscard]] std::uint64_t count_of(std::string_view category,
                                       std::string_view name,
                                       char phase) const;
};

/// Reconstructs spans from B/E events (per-key stacks, so overlapping
/// spans of different keys are fine) and aggregates the rollups above.
[[nodiscard]] TraceProfile profile_trace(const Trace& trace);

/// Folded-stack (flamegraph.pl) export: one "frame;frame;... count" line
/// per observed stack, self-time in integer microseconds, lines sorted;
/// frames render as "category:name" with ';' and spaces replaced.
[[nodiscard]] std::string folded_stacks(const Trace& trace);

/// One fixed-interval window of a rolled-up counter track.
struct RollupWindow {
  double t0_s = 0.0;
  double t1_s = 0.0;
  std::uint64_t samples = 0;  ///< counter events inside [t0, t1)
  double min = 0.0;           ///< level extrema, time-weighted domain
  double mean = 0.0;          ///< time-weighted mean level
  double max = 0.0;
  double p95 = 0.0;           ///< HistogramSnapshot::quantile estimate
  Joules energy_j{};          ///< integral of the level over the window
};

/// Fixed-interval rollup of the counter track `channel`. Windows
/// partition [0, horizon); the per-window `energy_j` values sum to the
/// exact integral of the piecewise-constant track (PowerTrace::energy)
/// over the same horizon — the attribution invariant the tests assert.
struct SeriesRollup {
  std::string channel;
  double interval_s = 0.0;
  double horizon_s = 0.0;
  Joules total_energy_j{};      ///< sum of window energies
  std::vector<RollupWindow> windows;
};

/// `horizon_s` <= 0 means "up to the last event timestamp". Throws when
/// `interval_s` <= 0 or the channel has no counter events.
[[nodiscard]] SeriesRollup rollup_counter(const Trace& trace,
                                          std::string_view channel,
                                          double interval_s,
                                          double horizon_s = 0.0);

/// Counter-track channels present in the trace, sorted by name.
[[nodiscard]] std::vector<std::string> counter_channels(const Trace& trace);

}  // namespace hcep::obs
