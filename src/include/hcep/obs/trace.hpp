// Structured event tracing over simulated time.
//
// The cluster simulator's timeline — job lifecycle spans, failure and
// scaling instants, power-level counter tracks — is recorded as
// (timestamp, category, name, arg) events into a preallocated ring
// buffer. Strings are interned once (call sites cache the ids) so the
// record fast path copies a few words under a short critical section;
// when the ring fills, the oldest events are overwritten (drop-oldest)
// and a drop counter keeps the loss visible.
//
// Exporters: Chrome `trace_event` JSON (loads in chrome://tracing and
// Perfetto; timestamps converted to microseconds), JSONL (one compact
// object per line, byte-stable for replay comparison) and CSV.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hcep/util/json.hpp"

namespace hcep::obs {

using StringId = std::uint32_t;

/// Trace event phases, mirroring the Chrome trace_event "ph" letters.
enum class EventType : std::uint8_t {
  kBegin,    ///< "B": opens a span on (category, name)
  kEnd,      ///< "E": closes the innermost open span
  kInstant,  ///< "i": a point event
  kCounter,  ///< "C": a sampled counter track (arg carries the value)
};

[[nodiscard]] char phase_letter(EventType type);

struct TraceEvent {
  double ts = 0.0;  ///< simulated seconds
  EventType type = EventType::kInstant;
  StringId category = 0;
  StringId name = 0;
  StringId arg_key = 0;  ///< kNoArg when the event carries no argument
  double arg_value = 0.0;
};

class EventTracer {
 public:
  static constexpr StringId kNoArg = 0xffffffffu;

  /// Preallocates a ring of `capacity` events (no allocation on record).
  explicit EventTracer(std::size_t capacity = 1u << 16);

  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  /// Interns a string; returns a stable id (idempotent per string).
  StringId intern(std::string_view s);
  /// Resolves an interned id.
  [[nodiscard]] const std::string& string_at(StringId id) const;

  void begin(double ts, StringId category, StringId name,
             StringId arg_key = kNoArg, double arg_value = 0.0);
  void end(double ts, StringId category, StringId name);
  void instant(double ts, StringId category, StringId name,
               StringId arg_key = kNoArg, double arg_value = 0.0);
  void counter(double ts, StringId category, StringId name, double value);

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Total events ever recorded, including since-overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events lost to drop-oldest overwrites.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Drops every retained event (interned strings survive).
  void clear();

  /// Chrome trace_event JSON object ({"traceEvents": [...], ...}).
  [[nodiscard]] JsonValue chrome_trace() const;
  [[nodiscard]] std::string chrome_trace_json() const;
  /// One compact JSON object per line, oldest first. String fields are
  /// JSON-escaped; obs::read_trace_jsonl() reads the format back in.
  [[nodiscard]] std::string jsonl() const;
  /// CSV with header ts,phase,category,name,arg_key,arg_value; string
  /// fields carry RFC 4180 quoting when they embed , " or line breaks.
  [[nodiscard]] std::string csv() const;

 private:
  void record(TraceEvent ev);

  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;  ///< fixed size after construction
  std::size_t head_ = 0;          ///< next write position
  std::size_t size_ = 0;          ///< retained events
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::string> strings_;
};

}  // namespace hcep::obs
