// Run-report pipeline: bundle the analysis layer's outputs — a trace
// profile, per-channel time-series rollups and a merged metrics snapshot
// — into one deterministic, serializable artifact.
//
// The JSON form (util/json) is byte-stable for a given input: every
// collection is emitted in a deterministic order and doubles print in
// shortest round-trip form, so two same-seed runs produce identical
// report bytes (asserted in tests). The Prometheus text form exposes the
// merged metric snapshot for scrape-style consumption.
#pragma once

#include <string>
#include <vector>

#include "hcep/obs/metrics.hpp"
#include "hcep/obs/profile.hpp"
#include "hcep/obs/stream.hpp"
#include "hcep/util/json.hpp"

namespace hcep::obs {

/// One run's telemetry, analyzed: profile + rollups + metrics, plus the
/// optional streamed timeline and control-plane decision ledger.
struct RunReport {
  std::string title;
  TraceProfile profile;
  std::vector<SeriesRollup> rollups;  ///< one per counter channel
  MetricsSnapshot metrics;
  /// Streamed tumbling-window timeline (attach from
  /// traffic::TrafficResult::timeline; emitted only when non-empty so
  /// reports without streaming keep their historic byte shape).
  stream::StreamTimeline timeline;
  /// Control-plane decision ledger (attach from
  /// ControlSummary::flight; emitted only when non-empty).
  stream::FlightRecorder flight;

  /// Data-loss and audit warnings: trace-ring drops and flight-recorder
  /// evictions, in emission order. Empty when nothing was lost.
  [[nodiscard]] std::vector<std::string> warnings() const;

  /// Deterministic JSON serialization (schema_version 1).
  [[nodiscard]] JsonValue to_json() const;
  [[nodiscard]] std::string json() const { return to_json().dump(); }
};

/// Builds a report from a decoded trace: profiles it, rolls up every
/// counter channel at `interval_s`, and attaches `metrics` when given.
/// Without a live snapshot (e.g. profiling a trace file), per-phase
/// event-census counters are synthesized under "trace.events.*" so the
/// Prometheus exposition still has content.
[[nodiscard]] RunReport make_run_report(const Trace& trace,
                                        std::string title,
                                        double interval_s,
                                        const MetricsSnapshot* metrics =
                                            nullptr);

/// Merges snapshots: counters sum, gauges take the last writer,
/// histograms with identical bounds add bucket-wise (different bounds for
/// the same name throw). Entry order is first-seen across the inputs.
[[nodiscard]] MetricsSnapshot merge_snapshots(
    const std::vector<MetricsSnapshot>& snapshots);

/// Prometheus text exposition (text/plain; version 0.0.4): one # TYPE
/// line per family, histogram buckets cumulative with a le="+Inf" total,
/// metric names sanitized (dots and other invalid characters become
/// underscores).
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snapshot);

}  // namespace hcep::obs
