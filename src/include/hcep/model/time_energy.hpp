// The Table 2 time-energy model, extended per Section II-B.
//
// Time: work is split across node types proportionally to their execution
// rates so every type finishes together ("the amount of workload executed
// by nodes of different types is determined by matching the execution
// rates among the different types of nodes"); per type,
// T_i = max(T_CPU, T_I/O) with T_CPU = max(T_core, T_mem) and
// T_P = max_i T_i.
//
// Energy: E_P = sum_i n_i (E_CPU + E_mem + E_I/O + E_idle) with the
// component powers from the node's PowerComponents and the workload's
// calibration factor.
//
// Utilization extension: average cluster power at utilization u follows
// the selected PowerCurve family between P_idle (u = 0) and the
// workload's busy power (u = 1); the paper's model is the linear family.
#pragma once

#include "hcep/model/cluster_spec.hpp"
#include "hcep/power/curve.hpp"
#include "hcep/workload/demand.hpp"
#include "hcep/workload/node_ops.hpp"

namespace hcep::model {

/// Power-profile family for the utilization extension.
enum class CurveFamily {
  kLinear,     ///< the paper's model
  kQuadratic,  ///< Hsu-Poole ablation (curvature fixed per call)
};

/// Per-group execution-time breakdown for one job.
struct GroupTime {
  std::string node_name;
  double units_per_node = 0.0;  ///< work units each node of the group runs
  workload::UnitTime per_node;  ///< phase times for the node's whole share
};

struct TimeResult {
  Seconds t_p{};                 ///< job execution time T_P
  std::vector<GroupTime> groups;
};

/// Per-group energy breakdown for one job (whole group, all n_i nodes).
struct GroupEnergy {
  std::string node_name;
  Joules cpu_active{};
  Joules cpu_stall{};
  Joules mem{};
  Joules net{};
  Joules idle{};
  [[nodiscard]] Joules total() const {
    return cpu_active + cpu_stall + mem + net + idle;
  }
};

struct EnergyResult {
  Joules e_p{};  ///< total job energy E_P (nodes only)
  std::vector<GroupEnergy> groups;
};

/// The model facade: a cluster configuration bound to a workload.
class TimeEnergyModel {
 public:
  /// Requires the workload to carry demand for every node type used.
  /// Borrows `workload` (no copy of the string-keyed demand maps): the
  /// workload must outlive the model.
  TimeEnergyModel(ClusterSpec cluster, const workload::Workload& workload);
  /// Binding to a temporary workload would dangle — forbid it.
  TimeEnergyModel(ClusterSpec cluster, workload::Workload&& workload) = delete;

  [[nodiscard]] const ClusterSpec& cluster() const { return cluster_; }
  [[nodiscard]] const workload::Workload& workload() const {
    return *workload_;
  }

  /// Cluster work throughput (units/s) with every node continuously busy.
  [[nodiscard]] double peak_throughput() const;

  /// Job execution time T_P for `units` of work (defaults to one job).
  [[nodiscard]] TimeResult execution_time(double units) const;
  [[nodiscard]] Seconds job_time() const;

  /// Job energy E_P for `units` of work.
  [[nodiscard]] EnergyResult job_energy(double units) const;

  /// Cluster idle power (sum of node idle floors; excludes overhead).
  [[nodiscard]] Watts idle_power() const;
  /// Cluster power with every node continuously processing its share —
  /// the per-workload P_peak of the proportionality analysis.
  [[nodiscard]] Watts busy_power() const;

  /// Power-vs-utilization profile in the chosen family.
  /// `curvature` applies to the quadratic family only.
  [[nodiscard]] power::PowerCurve power_curve(
      CurveFamily family = CurveFamily::kLinear, double curvature = 0.3) const;

  /// Average cluster power at utilization u (linear family).
  [[nodiscard]] Watts average_power(double utilization) const;

  /// Energy over an observation window T at utilization u; at u = 0 the
  /// cluster idles for the whole window (Section II-B's E(U)/T identities).
  [[nodiscard]] Joules window_energy(double utilization, Seconds window) const;

  /// Performance-to-power ratio at utilization u: delivered throughput
  /// per watt of average power (Section II-B's PPR(u)).
  [[nodiscard]] double ppr(double utilization) const;

 private:
  ClusterSpec cluster_;
  const workload::Workload* workload_;  ///< borrowed, never null
  std::vector<double> group_rates_;  ///< n_i * per-node unit throughput
  double total_rate_ = 0.0;
};

}  // namespace hcep::model
