// Cluster configuration: the unit of analysis for everything in the paper.
//
// A configuration is "a set of tuples consisting of the types of nodes,
// number of nodes for each type, the active cores per node and the
// operating core clock frequency" (Section II-A).
#pragma once

#include <string>
#include <vector>

#include "hcep/hw/node.hpp"

namespace hcep::model {

/// One homogeneous group inside a heterogeneous cluster:
/// (type, n_i, c_i, f_i).
struct NodeGroup {
  hw::NodeSpec spec;
  unsigned count = 0;         ///< n_i
  unsigned active_cores = 0;  ///< c_i (0 = all cores)
  Hertz frequency{};          ///< f_i (0 = f_max)

  /// Resolved active-core count / frequency with defaults applied.
  [[nodiscard]] unsigned cores() const;
  [[nodiscard]] Hertz freq() const;
};

/// A heterogeneous cluster configuration.
struct ClusterSpec {
  std::vector<NodeGroup> groups;
  /// Aggregation-switch and other rack overhead power. Included in power
  /// *budget* accounting (the paper's 8:1 substitution ratio folds in a
  /// 20 W switch) but excluded from the proportionality metrics, which the
  /// paper computes over node power.
  Watts overhead_power{};

  [[nodiscard]] unsigned total_nodes() const;
  /// Short label like "32A9:12K10".
  [[nodiscard]] std::string label() const;
  /// Nameplate peak power (budget accounting): sum of node nameplates
  /// plus overhead.
  [[nodiscard]] Watts nameplate_power() const;

  /// Throws hcep::PreconditionError when any group is malformed.
  void validate() const;
};

/// Builds the paper's standard two-type cluster: `n_a9` Cortex-A9 nodes and
/// `n_k10` Opteron K10 nodes at full cores / max frequency, with the 20 W
/// switch overhead charged when any A9 nodes are present.
[[nodiscard]] ClusterSpec make_a9_k10_cluster(unsigned n_a9, unsigned n_k10);

/// Generic two-type cluster: `n_wimpy` nodes of `wimpy` plus `n_brawny`
/// nodes of `brawny` at full cores / max frequency; the wimpy side is
/// charged aggregation-switch overhead (one switch per
/// hw::a9_nodes_per_switch() wimpy nodes, as the paper amortizes it).
[[nodiscard]] ClusterSpec make_two_type_cluster(const hw::NodeSpec& wimpy,
                                                unsigned n_wimpy,
                                                const hw::NodeSpec& brawny,
                                                unsigned n_brawny);

}  // namespace hcep::model
