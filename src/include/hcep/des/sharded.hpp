// Sharded DES execution with conservative-lookahead synchronization.
//
// One shard = one independent event loop (typically one node group of a
// simulated cluster). Execution proceeds in global windows:
//
//   1. t_min   = min over shards of the next pending event time
//   2. window  = [t_min, t_min + lookahead)
//   3. every shard executes its events with time < window end — in
//      parallel on the global thread pool (opt-in), since shards only
//      touch shard-local state inside the window
//   4. barrier: cross-shard events posted during the window are merged
//      and delivered in a deterministic (target, time, source, post
//      index) order, then the next window starts
//
// Conservative lookahead: a cross-shard post must target a time at least
// `lookahead` past the sender's clock. Because every event executed in a
// window lies before t_min + lookahead, every post lands at or past the
// window end — no shard can receive an event in its past, regardless of
// how the OS schedules the shard threads. Combined with the deterministic
// merge order at the barrier, a run's event order per shard — and hence
// any statistic derived from it — is byte-identical for a fixed
// (seed, shard count) pair whether shards run serially or in parallel
// (asserted in tests/test_des.cpp; the TSan `sanitize` label covers the
// parallel path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "hcep/des/simulator.hpp"
#include "hcep/util/units.hpp"

namespace hcep::des {

class ShardedSimulator {
 public:
  /// `lookahead` is the conservative synchronization horizon: the minimum
  /// sender-clock-to-delivery distance of cross-shard posts, and the
  /// window length of the execution loop. Must be positive.
  ShardedSimulator(std::size_t shards, Seconds lookahead);

  [[nodiscard]] std::size_t shards() const { return shards_.size(); }
  [[nodiscard]] Simulator& shard(std::size_t i) { return *shards_[i]; }

  /// Schedules a shard-local event (setup or from within that shard's
  /// own callbacks).
  void schedule_on(std::size_t shard, Seconds t, Callback cb);

  /// Posts a cross-shard event from `from` to `to` at absolute time `t`;
  /// requires t >= shard(from).now() + lookahead (the conservative
  /// contract). Delivered at the next window barrier.
  void post(std::size_t from, std::size_t to, Seconds t, Callback cb);

  /// Runs windows until every shard drains and no posts are pending.
  /// With `parallel`, shards execute each window concurrently on the
  /// global hcep::ThreadPool; the result is identical either way.
  void run(bool parallel = true);

  /// Total events executed across shards.
  [[nodiscard]] std::uint64_t events_processed() const;

 private:
  struct Post {
    std::size_t to = 0;
    Seconds time{};
    std::size_t from = 0;
    std::uint64_t index = 0;  ///< per-sender post counter (FIFO tiebreak)
    Callback cb;
  };

  /// Delivers pending posts in deterministic order; returns the count.
  std::size_t flush_posts();

  // Simulator is non-movable (self-referential scheduler state may be
  // captured by callbacks), so shards live behind stable pointers.
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::vector<Post>> outbox_;  ///< indexed by sender shard
  std::vector<std::uint64_t> post_seq_;    ///< per-sender post counter
  Seconds lookahead_{};
};

}  // namespace hcep::des
