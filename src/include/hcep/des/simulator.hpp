// Discrete-event simulation kernel.
//
// A deterministic event-queue engine: callbacks scheduled at absolute or
// relative simulated times, executed in (time, insertion) order. The
// cluster simulator (hcep::cluster) and the request-level traffic
// simulator (hcep::traffic) build on top of this.
//
// The kernel is a thin loop over a pluggable Scheduler (scheduler.hpp):
//
//   Simulator      = BasicSimulator<CalendarScheduler>   the default —
//                    O(1) amortized scheduling, allocation-free events
//   HeapSimulator  = BasicSimulator<HeapScheduler>       the binary-heap
//                    oracle the calendar queue is cross-checked against
//
// Both execute identical schedules in byte-identical order: the
// (time, seq) total order is the contract, the scheduler only changes
// how fast it is realized. Callbacks are des::Callback — captures up to
// 48 bytes are stored inside the event record, so scheduling an event
// allocates nothing on the hot path (see callback.hpp).
//
// For multi-shard execution (one event loop per node group, conservative
// lookahead synchronization) see sharded.hpp.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>

#include "hcep/des/callback.hpp"
#include "hcep/des/scheduler.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/util/error.hpp"
#include "hcep/util/units.hpp"

namespace hcep::des {

/// Back-compat alias: the kernel's callback type. (The seed kernel used
/// std::function<void()>; des::Callback accepts the same lambdas without
/// the per-event heap allocation.)
using EventCallback = Callback;

template <Scheduler Sched>
class BasicSimulator {
 public:
  /// Binds to obs::current() at construction (null sink by default):
  /// every executed event feeds the `des.events` counter plus queue-depth
  /// and event-time histograms of the active observer.
  BasicSimulator() {
#if HCEP_OBS
    obs_ = obs::current();
    if (obs_ != nullptr) {
      events_metric_ = obs_->metrics.counter("des.events");
      depth_metric_ = obs_->metrics.histogram(
          "des.queue_depth", {0, 1, 2, 4, 8, 16, 32, 64, 128, 256});
      time_metric_ = obs_->metrics.histogram(
          "des.event_time_s", {1e-3, 1e-2, 1e-1, 1, 10, 100, 1e3, 1e4});
    }
#endif
  }
  BasicSimulator(const BasicSimulator&) = delete;
  BasicSimulator& operator=(const BasicSimulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must not lie in the past).
  void schedule_at(Seconds t, Callback cb) {
    require(t >= now_, "Simulator::schedule_at: time lies in the past");
    require(static_cast<bool>(cb), "Simulator::schedule_at: empty callback");
    queue_.push(t, next_seq_++, std::move(cb));
  }

  /// Schedule fast path for callables that are not already a Callback:
  /// the lambda is emplaced directly into the scheduler's event record,
  /// so its capture bytes are written exactly once (no type-erased
  /// relocation hops between here and the arena slot).
  template <class F>
    requires(!std::is_same_v<std::decay_t<F>, Callback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  void schedule_at(Seconds t, F&& f) {
    require(t >= now_, "Simulator::schedule_at: time lies in the past");
    if constexpr (requires { queue_.emplace(t, next_seq_, std::forward<F>(f)); }) {
      queue_.emplace(t, next_seq_++, std::forward<F>(f));
    } else {
      queue_.push(t, next_seq_++, Callback(std::forward<F>(f)));
    }
  }

  /// Schedules `cb` after `delay` from now (delay >= 0).
  void schedule_in(Seconds delay, Callback cb) {
    require(delay.value() >= 0.0, "Simulator::schedule_in: negative delay");
    schedule_at(now_ + delay, std::move(cb));
  }

  template <class F>
    requires(!std::is_same_v<std::decay_t<F>, Callback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  void schedule_in(Seconds delay, F&& f) {
    require(delay.value() >= 0.0, "Simulator::schedule_in: negative delay");
    schedule_at<F>(now_ + delay, std::forward<F>(f));
  }

  /// Executes the next event; returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    Event ev = queue_.pop();
    now_ = ev.time;
    ++processed_;
#if HCEP_OBS
    if (obs_ != nullptr) {
      obs_->metrics.add(events_metric_);
      obs_->metrics.observe(depth_metric_,
                            static_cast<double>(queue_.size()));
      obs_->metrics.observe(time_metric_, now_.value());
    }
#endif
    ev.callback();
    return true;
  }

  /// Runs events until the queue drains or the next event lies beyond
  /// `horizon`; the clock is finally advanced to exactly `horizon`.
  void run_until(Seconds horizon) {
    require(horizon >= now_, "Simulator::run_until: horizon in the past");
    while (!queue_.empty() && queue_.peek_time() <= horizon) step();
    now_ = horizon;
  }

  /// Runs events with time strictly below `bound`, leaving the clock at
  /// the last executed event (NOT advanced to the bound) — the window
  /// primitive of the sharded conservative-lookahead loop: events at or
  /// past the bound stay queued for the next window.
  void run_before(Seconds bound) {
    while (!queue_.empty() && queue_.peek_time() < bound) step();
  }

  /// Runs until the queue drains completely.
  void run() {
    while (step()) {
    }
  }

  /// Time of the next pending event (precondition: !empty()).
  [[nodiscard]] Seconds next_event_time() { return queue_.peek_time(); }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  Sched queue_;
  Seconds now_{0.0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
#if HCEP_OBS
  obs::Observer* obs_ = nullptr;
  obs::MetricId events_metric_ = 0;
  obs::MetricId depth_metric_ = 0;
  obs::MetricId time_metric_ = 0;
#endif
};

/// The production kernel.
using Simulator = BasicSimulator<CalendarScheduler>;
/// The O(log n) oracle (tests cross-check pop order against Simulator).
using HeapSimulator = BasicSimulator<HeapScheduler>;

}  // namespace hcep::des
