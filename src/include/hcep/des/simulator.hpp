// Discrete-event simulation kernel.
//
// A minimal, deterministic event-queue engine: callbacks scheduled at
// absolute or relative simulated times, executed in (time, insertion)
// order. The cluster simulator (hcep::cluster) builds its dispatcher,
// nodes and measurement campaign on top of this.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "hcep/obs/obs.hpp"
#include "hcep/util/units.hpp"

namespace hcep::des {

using EventCallback = std::function<void()>;

class Simulator {
 public:
  /// Binds to obs::current() at construction (null sink by default):
  /// every executed event feeds the `des.events` counter plus queue-depth
  /// and event-time histograms of the active observer.
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must not lie in the past).
  void schedule_at(Seconds t, EventCallback cb);

  /// Schedules `cb` after `delay` from now (delay >= 0).
  void schedule_in(Seconds delay, EventCallback cb);

  /// Executes the next event; returns false when the queue is empty.
  bool step();

  /// Runs events until the queue drains or the next event lies beyond
  /// `horizon`; the clock is finally advanced to exactly `horizon`.
  void run_until(Seconds horizon);

  /// Runs until the queue drains completely.
  void run();

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    Seconds time{};
    std::uint64_t seq = 0;
    EventCallback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Seconds now_{0.0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
#if HCEP_OBS
  obs::Observer* obs_ = nullptr;
  obs::MetricId events_metric_ = 0;
  obs::MetricId depth_metric_ = 0;
  obs::MetricId time_metric_ = 0;
#endif
};

}  // namespace hcep::des
