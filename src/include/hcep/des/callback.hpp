// Allocation-free event callbacks for the DES hot path.
//
// The seed kernel stored every event callback in a std::function<void()>,
// whose small-buffer optimization (16 bytes in libstdc++) is too small
// for the capture lists the simulators actually schedule — so every
// scheduled event paid a heap allocation plus a virtual-ish indirect
// copy. des::Callback is a move-only type-erased callable with inline
// storage sized for the kernel's real captures (a context pointer plus a
// request record plus a couple of Seconds): captures up to kInlineSize
// bytes live inside the event record itself and never touch the heap.
// Larger captures still work — they spill to a single heap cell — but the
// hot paths (traffic::simulate_traffic, cluster::simulate, the bench
// churn loops) are written so every scheduled capture fits inline;
// Callback::stores_inline<F> lets tests static_assert that contract.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hcep::des {

class Callback {
 public:
  /// Inline capture budget. 48 bytes fits a context pointer, a 24-byte
  /// request record and two Seconds — the largest hot-path capture in the
  /// tree (see traffic/simulate.cpp).
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(void*) * 2;
  static_assert(kInlineSize >= 48,
                "DES hot-path captures are sized against a 48-byte "
                "minimum inline budget");

  /// Whether a callable of type F is stored inline (no heap allocation on
  /// schedule). Hot-path call sites static_assert this.
  template <class F>
  static constexpr bool stores_inline =
      sizeof(std::decay_t<F>) <= kInlineSize &&
      alignof(std::decay_t<F>) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  Callback() noexcept = default;

  template <class F,
            class D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, Callback> &&
                                 std::is_invocable_r_v<void, D&>,
                             int> = 0>
  // NOLINTNEXTLINE(google-explicit-constructor): callbacks bind lambdas
  Callback(F&& f) {
    if constexpr (stores_inline<F>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &kInlineVTable<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      vtable_ = &kHeapVTable<D>;
    }
  }

  /// Destroys the current callable (if any) and constructs a new one in
  /// place — the schedule fast path: the simulator emplaces hot-path
  /// lambdas straight into the scheduler's arena slot, so the capture
  /// bytes are written exactly once, with no intermediate relocate calls.
  template <class F,
            class D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, Callback> &&
                                 std::is_invocable_r_v<void, D&>,
                             int> = 0>
  void emplace(F&& f) {
    reset();
    if constexpr (stores_inline<F>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &kInlineVTable<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      vtable_ = &kHeapVTable<D>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  /// Invokes the stored callable (undefined when empty; the simulator
  /// rejects empty callbacks at schedule time).
  void operator()() { vtable_->invoke(storage_); }

  /// True when the stored callable lives in the inline buffer.
  [[nodiscard]] bool is_inline() const noexcept {
    return vtable_ != nullptr && vtable_->inline_storage;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <class D>
  static constexpr VTable kInlineVTable{
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
      true};

  template <class D>
  static constexpr VTable kHeapVTable{
      [](void* s) { (**reinterpret_cast<D**>(s))(); },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      [](void* s) noexcept { delete *reinterpret_cast<D**>(s); },
      false};

  void move_from(Callback& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace hcep::des
