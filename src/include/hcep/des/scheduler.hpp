// Pending-event schedulers for the DES kernel.
//
// The kernel's contract is a strict total order: events execute in
// (time, seq) order, seq being the schedule sequence number — FIFO among
// simultaneous events. Two interchangeable structures provide it:
//
//   HeapScheduler      binary min-heap over a contiguous vector. O(log n)
//                      push/pop, trivially correct — the oracle the
//                      calendar implementation is cross-checked against
//                      (tests/test_des.cpp runs both on identical
//                      schedules and asserts identical pop sequences).
//   CalendarScheduler  calendar queue (Brown '88 shape): a power-of-two
//                      ring of time buckets of adaptive width for the
//                      near future plus a HeapScheduler overflow for
//                      events beyond the wheel horizon. Push appends to a
//                      bucket (O(1)); pop drains the cursor bucket as a
//                      small POD min-heap (heapified once per bucket, so
//                      events scheduled into the in-progress bucket cost
//                      O(log bucket) — not an O(bucket) sorted insert)
//                      and cascades overflow events into the wheel as the
//                      horizon advances. For the
//                      near-uniform timestamp distributions the
//                      Poisson/MMPP arrival processes produce, push and
//                      pop are O(1) amortized — the binary heap's
//                      O(log n) comparison chain (20 cache-missing levels
//                      at 1M pending events) is what this replaces.
//
// Both structures own their event records in contiguous vectors (bucket
// and heap storage is recycled across pops — the steady-state hot path
// performs no allocation), and both pop by value, so callbacks move out
// of storage without the const_cast workaround the seed kernel needed
// around priority_queue::top().
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "hcep/des/callback.hpp"
#include "hcep/util/units.hpp"

namespace hcep::des {

/// One scheduled event. The callback lives inside the record (inline for
/// hot-path captures; see callback.hpp), so the scheduler's vectors are
/// the event arena — there is no per-event node allocation.
struct Event {
  Seconds time{};
  std::uint64_t seq = 0;
  Callback callback;

  /// Strict total order: earlier time first, then FIFO by sequence.
  [[nodiscard]] bool before(const Event& other) const {
    if (time != other.time) return time < other.time;
    return seq < other.seq;
  }
};

/// What BasicSimulator needs from a pending-event structure. pop() must
/// return the globally least event under Event::before; peek_time() the
/// time that event will pop at (both may reorganize internal state).
template <class S>
concept Scheduler = requires(S s, const S cs, Seconds t, std::uint64_t seq,
                             Callback cb) {
  { s.push(t, seq, std::move(cb)) } -> std::same_as<void>;
  { cs.empty() } -> std::same_as<bool>;
  { cs.size() } -> std::same_as<std::size_t>;
  { s.peek_time() } -> std::same_as<Seconds>;
  { s.pop() } -> std::same_as<Event>;
};

/// Binary min-heap scheduler: the straightforward O(log n) structure and
/// the determinism oracle for CalendarScheduler.
class HeapScheduler {
 public:
  void push(Seconds t, std::uint64_t seq, Callback cb) {
    heap_.push_back(Event{t, seq, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), kAfter);
  }

  /// Emplace parity with CalendarScheduler: constructs the callback in
  /// the heap's event record (one move fewer than push; the oracle does
  /// not need to be fast, but the schedule API must behave identically).
  template <class F>
  void emplace(Seconds t, std::uint64_t seq, F&& f) {
    heap_.emplace_back(t, seq, Callback(std::forward<F>(f)));
    std::push_heap(heap_.begin(), heap_.end(), kAfter);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  [[nodiscard]] Seconds peek_time() { return heap_.front().time; }

  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), kAfter);
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }

 private:
  // std::push_heap builds a max-heap under the comparator, so "a after b"
  // puts the least (time, seq) event at the front.
  static constexpr auto kAfter = [](const Event& a, const Event& b) {
    return b.before(a);
  };

  std::vector<Event> heap_;
};

/// Calendar-queue scheduler: O(1) amortized push/pop for timestamp
/// distributions without heavy far-future tails. See the file comment and
/// docs/SIMULATOR.md for the structure; tests/test_des.cpp cross-checks
/// its pop order against HeapScheduler event-for-event.
///
/// Storage is split in two, and the split is what makes it fast:
///
///   - a slot arena (`slots_` + a LIFO free list) owns the move-only
///     Callback records — each callback is moved exactly twice (in at
///     push, out at pop), and the LIFO reuse keeps the active slots
///     cache-hot;
///   - the wheel, cursor bucket and overflow heap shuffle only 24-byte
///     trivially-copyable Entry{time, seq, slot} values, so bucket
///     appends, sorts, heap sifts and rebuilds are branch-light memcpy
///     loops with no indirect calls.
class CalendarScheduler {
 public:
  CalendarScheduler() : buckets_(kInitialBuckets), mask_(kInitialBuckets - 1) {}

  void push(Seconds t, std::uint64_t seq, Callback cb) {
    const std::uint32_t slot = park_slot();
    slots_[slot] = std::move(cb);
    insert_entry(Entry{t.value(), seq, slot});
  }

  /// Schedule fast path: constructs the callable directly in its arena
  /// slot — the capture bytes are written exactly once, with no
  /// intermediate Callback relocations on the way in.
  template <class F>
  void emplace(Seconds t, std::uint64_t seq, F&& f) {
    const std::uint32_t slot = park_slot();
    slots_[slot].emplace(std::forward<F>(f));
    insert_entry(Entry{t.value(), seq, slot});
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// Time of the next event to pop (advances the cursor over drained
  /// buckets and heapifies the target bucket; precondition: !empty()).
  [[nodiscard]] Seconds peek_time() {
    settle();
    return Seconds{buckets_[cursor_].front().time};
  }

  /// Removes and returns the least pending event (precondition: !empty()).
  Event pop() {
    settle();
    Bucket& bucket = buckets_[cursor_];
    if (bucket.size() > 1) {
      std::pop_heap(bucket.begin(), bucket.end(), After{});
    }
    const Entry e = bucket.back();
    bucket.pop_back();  // capacity is retained: the bucket is recycled
    --wheel_count_;
    --count_;
    free_slots_.push_back(e.slot);
    if (!bucket.empty()) {
      // The heap root is the event the NEXT pop returns, so the slot it
      // will relocate out of is known now. At deep pending counts (1M
      // events = a ~56MB arena) that read is a guaranteed DRAM miss;
      // issuing it one event early hides the latency behind the current
      // event's callback.
      prefetch_for_write(&slots_[bucket.front().slot]);
    }
    return Event{Seconds{e.time}, e.seq, std::move(slots_[e.slot])};
  }

 private:
  // Wheel geometry. kInitialBuckets is deliberately small: the structure
  // self-tunes by rebuilding, so the constant only matters for the first
  // few thousand events of a run. Rebuilds trigger when the wheel holds
  // more than kLoadFactor events per bucket (and can still grow) and
  // re-derive the width so buckets hold ~kTargetPerBucket events — deep
  // enough that a push rarely misses more than one cache line, shallow
  // enough that the per-bucket sort stays O(1) amortized per event.
  static constexpr std::size_t kInitialBuckets = 256;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 16;
  static constexpr std::size_t kLoadFactor = 16;
  static constexpr double kTargetPerBucket = 8.0;

  /// Wheel/overflow record: the callback stays in the arena, the
  /// structures move only this POD.
  struct Entry {
    double time;
    std::uint64_t seq;
    std::uint32_t slot;

    [[nodiscard]] bool before(const Entry& other) const {
      if (time != other.time) return time < other.time;
      return seq < other.seq;
    }
  };
  static_assert(std::is_trivially_copyable_v<Entry>);

  /// Heap comparator: a max-heap under "a after b" keeps the least
  /// (time, seq) entry at the root. Used for the cursor bucket and the
  /// overflow heap alike — both sift the same 24-byte PODs.
  struct After {
    [[nodiscard]] bool operator()(const Entry& a, const Entry& b) const {
      return b.before(a);
    }
  };

  using Bucket = std::vector<Entry>;

  static void prefetch_for_write(void* p) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 1);
#else
    (void)p;
#endif
  }

  /// Claims an arena slot (LIFO recycling: in steady-state churn the slot
  /// being filled is the one the previous pop vacated — already hot).
  std::uint32_t park_slot() {
    if (free_slots_.empty()) {
      slots_.emplace_back();
      return static_cast<std::uint32_t>(slots_.size() - 1);
    }
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }

  /// Routes an entry to the wheel or the overflow heap.
  void insert_entry(Entry e) {
    if (count_ == 0) {
      // Empty scheduler: re-anchor the wheel at the event so it lands in
      // the cursor bucket regardless of how far the clock has drifted.
      base_ = e.time;
      cursor_heaped_ = false;
    }
    ++count_;
    if (e.time >= horizon()) {
      overflow_push(e);
      return;
    }
    place_in_wheel(e);
    if (wheel_count_ > kLoadFactor * buckets_.size() &&
        buckets_.size() < kMaxBuckets) {
      rebuild();
    }
  }

  /// Places an entry into the wheel; precondition: time < horizon().
  void place_in_wheel(Entry e) {
    std::size_t index = cursor_;
    if (e.time > base_) {
      // Events before base_ (possible after an empty-wheel re-anchor,
      // since the simulator clock may trail the anchor) clamp into the
      // cursor bucket: they precede everything else in the wheel, and the
      // cursor bucket is the one drained next.
      const double offset = (e.time - base_) * inv_width_;
      if (offset >= 1.0) {
        // The multiply can round up to the bucket count even though the
        // caller checked time < horizon(); clamp into the last bucket so
        // the event cannot wrap around the ring into the cursor bucket.
        std::size_t off = static_cast<std::size_t>(offset);
        if (off > mask_) off = mask_;
        index = (cursor_ + off) & mask_;
      }
    }
    Bucket& bucket = buckets_[index];
    bucket.push_back(e);
    if (index == cursor_ && cursor_heaped_) {
      // Mid-drain insert into the bucket currently being popped from:
      // an O(log bucket) sift, NOT an O(bucket) sorted insert — service
      // completions landing a few microseconds out hit this path on
      // every push once the queue is deep enough that bucket widths
      // exceed the typical event delay.
      std::push_heap(bucket.begin(), bucket.end(), After{});
    }
    ++wheel_count_;
  }

  /// Ensures the cursor bucket holds the globally least event at its heap
  /// root. The fast path is branch-two-loads; everything else lives out
  /// of line in settle_slow().
  void settle() {
    if (cursor_heaped_ && !buckets_[cursor_].empty()) return;
    settle_slow();
  }
  void settle_slow();
  /// Advances the cursor one bucket, cascading newly reachable overflow
  /// events into the freed horizon slice.
  void advance_bucket();
  /// Rebuilds buckets/width from the current pending set.
  void rebuild();
  void set_width(double width) {
    width_ = width;
    inv_width_ = 1.0 / width;
  }

  [[nodiscard]] double horizon() const {
    return base_ + width_ * static_cast<double>(buckets_.size());
  }

  // Overflow min-heap over (time, seq), kept as a raw vector + sift
  // helpers so its elements are the same POD entries as the wheel's.
  void overflow_push(Entry e);
  Entry overflow_pop();

  std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;        ///< buckets_.size() - 1 (power of two)
  std::size_t cursor_ = 0;      ///< index of the current bucket
  double base_ = 0.0;           ///< start time of the current bucket
  double width_ = 1.0;          ///< bucket width (seconds)
  double inv_width_ = 1.0;      ///< 1/width_ (push divides on every call)
  bool cursor_heaped_ = false;  ///< cursor bucket heapified (root = least)?
  std::size_t wheel_count_ = 0;
  std::size_t count_ = 0;
  std::vector<Entry> overflow_;  ///< events at/beyond the wheel horizon
  std::vector<Callback> slots_;  ///< the event-record arena
  std::vector<std::uint32_t> free_slots_;  ///< LIFO slot recycling
};

}  // namespace hcep::des
