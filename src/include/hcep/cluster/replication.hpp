// Replication statistics: run a stochastic simulation N times with
// independent seeds and report mean +/- confidence half-width per metric.
// Simulation results without error bars invite over-reading; the
// reproduction benches that quote simulated numbers use this.
#pragma once

#include <cstdint>
#include <functional>

#include "hcep/util/stats.hpp"

namespace hcep::cluster {

/// Mean and half-width of a (1-alpha) confidence interval.
struct Estimate {
  double mean = 0.0;
  double half_width = 0.0;
  std::size_t replications = 0;

  [[nodiscard]] double lower() const { return mean - half_width; }
  [[nodiscard]] double upper() const { return mean + half_width; }
  /// True when `value` falls inside the interval.
  [[nodiscard]] bool covers(double value) const {
    return value >= lower() && value <= upper();
  }
};

/// Two-sided Student-t critical value for the given degrees of freedom at
/// 95 % confidence (table for small df, normal limit beyond).
[[nodiscard]] double t_critical_95(std::size_t degrees_of_freedom);

/// Runs `metric(seed)` for `replications` independent seeds derived from
/// `base_seed` and returns the 95 % confidence estimate.
[[nodiscard]] Estimate replicate(
    const std::function<double(std::uint64_t seed)>& metric,
    std::size_t replications, std::uint64_t base_seed = 1);

}  // namespace hcep::cluster
