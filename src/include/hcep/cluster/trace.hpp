// Load-trace replay (extension).
//
// The paper evaluates at fixed utilization levels; real datacenters see
// diurnal load. A LoadTrace describes target utilization over time; the
// replay drives the cluster simulator with a non-homogeneous Poisson
// arrival process (thinning) and reports per-bucket power/latency plus
// the total energy of the observation horizon — the quantity a mix
// actually bills for over a day.
#pragma once

#include <cstdint>
#include <vector>

#include "hcep/model/time_energy.hpp"
#include "hcep/util/math.hpp"
#include "hcep/util/units.hpp"

namespace hcep::cluster {

/// Target utilization (0..<1) as a function of time, piecewise linear.
class LoadTrace {
 public:
  /// From explicit (time, utilization) knots; times strictly increasing
  /// starting at 0, utilizations in [0, 1).
  explicit LoadTrace(PiecewiseLinear profile);

  /// Sinusoidal day/night pattern: u(t) = mid + amp * sin(2 pi t / period)
  /// clipped to [low, high]; starts at the midpoint heading up.
  [[nodiscard]] static LoadTrace diurnal(Seconds period, double low,
                                         double high,
                                         std::size_t knots = 49);

  /// Two-level step: `low` outside, `high` during [start, start+width).
  [[nodiscard]] static LoadTrace step(Seconds horizon, double low,
                                      double high, Seconds start,
                                      Seconds width);

  /// Flat load (degenerates to the paper's fixed-utilization runs).
  [[nodiscard]] static LoadTrace flat(Seconds horizon, double level);

  [[nodiscard]] double at(Seconds t) const;
  [[nodiscard]] Seconds horizon() const;
  /// Highest utilization anywhere on the trace.
  [[nodiscard]] double peak() const;

 private:
  PiecewiseLinear profile_;
};

struct TraceBucket {
  Seconds start{};
  double target_utilization = 0.0;   ///< trace average over the bucket
  double realized_utilization = 0.0; ///< busy time / bucket
  Watts average_power{};
  Seconds p95_response{};
  std::uint64_t jobs = 0;
};

struct TraceReplayResult {
  std::vector<TraceBucket> buckets;
  Joules total_energy{};
  Watts average_power{};
  std::uint64_t jobs_completed = 0;
  Seconds worst_p95{};
};

struct TraceReplayOptions {
  /// Reporting bucket width; zero selects horizon / 24.
  Seconds bucket{};
  std::uint64_t seed = 2024;
};

/// Replays `trace` against the model's cluster (model-exact service
/// times, exact trace-integral energy).
[[nodiscard]] TraceReplayResult replay_trace(
    const model::TimeEnergyModel& model, const LoadTrace& trace,
    const TraceReplayOptions& options = {});

}  // namespace hcep::cluster
