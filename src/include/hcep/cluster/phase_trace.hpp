// Phase-level power traces (extension).
//
// The job-level simulator draws one flat "busy power" per node; real
// nodes step through phases. This module renders a node's execution of a
// work share as the Table 2 phase structure:
//
//   [0, min(T_core, T_mem))           cores active, memory streaming
//   [min, T_core)  (compute-bound)    cores active, memory quiet
//   [min, T_mem)   (memory-bound)     cores stalled, memory streaming
//   [0, T_I/O)                        NIC active (DMA overlaps the CPU)
//   [T_CPU-or-I/O, end)               idle tail (if another phase is longer)
//
// The resulting trace integrates EXACTLY to the model's per-component
// energies (unit_energy + idle floor) — asserted by tests — so the
// phase renderer doubles as an independent check of the energy algebra.
#pragma once

#include "hcep/hw/node.hpp"
#include "hcep/power/meter.hpp"
#include "hcep/workload/demand.hpp"
#include "hcep/workload/node_ops.hpp"

namespace hcep::cluster {

/// Renders the power trace of ONE node executing `units` units of work at
/// the given operating point, with the workload's calibration factor.
/// The trace starts at t = 0 and ends at the share's total time; the
/// level before/after is the node's idle floor.
[[nodiscard]] power::PowerTrace node_phase_trace(
    const workload::NodeDemand& demand, const hw::NodeSpec& node,
    unsigned active_cores, Hertz frequency, double units,
    double power_scale = 1.0);

/// Phase durations the trace is built from (exposed for tests/plots).
struct PhaseBreakdown {
  Seconds overlap{};       ///< cores active + memory busy
  Seconds compute_only{};  ///< cores active, memory quiet
  Seconds stall_only{};    ///< cores stalled, memory busy
  Seconds io_total{};      ///< NIC busy (overlapped from t = 0)
  Seconds total{};         ///< max(cpu, io)
};

[[nodiscard]] PhaseBreakdown phase_breakdown(
    const workload::NodeDemand& demand, const hw::NodeSpec& node,
    unsigned active_cores, Hertz frequency, double units);

}  // namespace hcep::cluster
