// Autoscaling replay (extension).
//
// The paper fixes the node mix per configuration and notes that "dynamic
// adaptation of the workload during the execution of a program
// complements our approach" (Section I). This module is that complement:
// a controller samples the offered load periodically and powers whole
// nodes on/off (greedy, most work-per-watt first), with a boot delay
// during which a waking node draws idle power but serves nothing and a
// sleep floor for parked nodes.
//
// The interesting output is the *effective* power-vs-utilization profile
// of the autoscaled cluster: with node granularity fine enough (wimpy
// fleets!) it hugs the ideal-proportional line that no static mix can
// reach — quantifying how far dynamic adaptation beats the sub-linear
// static configurations of Figure 9.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hcep/cluster/trace.hpp"
#include "hcep/metrics/proportionality.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/power/curve.hpp"

namespace hcep::cluster {

struct AutoscaleOptions {
  /// Controller sampling period.
  Seconds control_period{5.0};
  /// Capacity headroom: target capacity = demand * (1 + headroom).
  double headroom = 0.25;
  /// Boot (power-on to serving) delay; waking nodes draw idle power.
  Seconds boot_delay{10.0};
  /// Power drawn by a parked node (suspend-to-RAM class).
  Watts sleep_power{0.5};
  /// Never park below this fraction of the fleet (QoS floor).
  double min_active_fraction = 0.05;
  std::uint64_t seed = 99;
};

struct AutoscaleBucket {
  Seconds start{};
  double target_utilization = 0.0;   ///< of the FULL fleet's capacity
  double active_fraction = 0.0;      ///< nodes serving / fleet size
  Watts average_power{};
  Seconds p95_response{};
  std::uint64_t jobs = 0;
};

struct AutoscaleResult {
  std::vector<AutoscaleBucket> buckets;
  Joules total_energy{};
  Watts average_power{};
  std::uint64_t jobs_completed = 0;
  Seconds worst_p95{};
  /// (fleet utilization, average power) samples -> effective profile.
  power::PowerCurve effective_curve =
      power::PowerCurve::linear(Watts{0.0}, Watts{1.0});
  /// Metrics of the effective profile vs the static full-fleet curve.
  metrics::ProportionalityReport effective_report;
  metrics::ProportionalityReport static_report;
};

/// Replays `trace` with the autoscaling controller over `model`'s fleet.
[[nodiscard]] AutoscaleResult autoscale_replay(
    const model::TimeEnergyModel& model, const LoadTrace& trace,
    const AutoscaleOptions& options = {});

}  // namespace hcep::cluster
