// Discrete-event cluster simulator — the stand-in for the paper's physical
// testbed (Fig. 4).
//
// Jobs arrive Poisson at the dispatcher and are served FIFO by the whole
// cluster (the paper's M/D/1 view: the cluster is the server, service time
// is T_P). During a job each node group draws its busy power until its
// share completes, then falls back to idle; the resulting cluster power
// trace is integrated exactly and through the emulated Yokogawa meter.
// Per-group "perf counters" (work cycles, stall cycles, I/O bytes)
// accumulate as on the real testbed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hcep/cluster/overheads.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/power/meter.hpp"
#include "hcep/util/units.hpp"

namespace hcep::cluster {

struct SimOptions {
  /// Target cluster utilization U = T_P * lambda in [0, 1); arrival rate
  /// is derived from the *simulated* per-job service time.
  double utilization = 0.5;
  /// Jobs per batch arrival ("we vary the number of jobs per batch and
  /// number of batches in an observation interval", Section II-C). The
  /// batch rate is scaled so the utilization target is preserved; larger
  /// batches burst the queue and lengthen response tails.
  unsigned batch_size = 1;
  /// Observation window T; when zero, sized to cover `min_jobs` jobs.
  Seconds window{};
  /// Window sizing when `window` is zero.
  std::uint64_t min_jobs = 400;
  std::uint64_t seed = 12345;
  /// Systematic testbed effects; defaults to the calibrated table.
  bool use_testbed_overheads = true;
  /// Meter emulation for the "measured" energy.
  power::MeterSpec meter{};
};

/// Per-group simulated perf-counter accumulation.
struct GroupCounters {
  std::string node_name;
  double work_cycles = 0.0;
  double stall_cycles = 0.0;
  double io_bytes = 0.0;
  std::uint64_t jobs_served = 0;
};

struct SimResult {
  std::uint64_t jobs_arrived = 0;
  std::uint64_t jobs_completed = 0;
  double units_completed = 0.0;

  Seconds window{};
  Joules energy_exact{};     ///< exact trace integral over the window
  Joules energy_measured{};  ///< through the sampling meter
  Watts average_power{};     ///< energy_exact / window

  Seconds mean_service{};    ///< realized per-job service time
  Seconds mean_response{};
  Seconds p95_response{};
  double measured_utilization = 0.0;  ///< busy time / window

  std::vector<GroupCounters> counters;
  /// Full response-time samples (seconds) for exact percentiles.
  std::vector<double> response_samples;
};

/// Simulates `model`'s cluster serving its workload at the requested
/// utilization. Deterministic for a fixed seed.
[[nodiscard]] SimResult simulate(const model::TimeEnergyModel& model,
                                 const SimOptions& options);

/// Convenience: simulated (measured) energy of `jobs` back-to-back jobs
/// plus the exact execution makespan — the quantities the Table 4
/// validation compares against the model's T_P and E_P.
struct JobMeasurement {
  Seconds time_per_job{};
  Joules energy_per_job{};
};
[[nodiscard]] JobMeasurement measure_batch(const model::TimeEnergyModel& model,
                                           std::uint64_t jobs,
                                           std::uint64_t seed = 12345,
                                           bool use_testbed_overheads = true);

}  // namespace hcep::cluster
