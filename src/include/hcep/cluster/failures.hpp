// Failure injection (extension).
//
// Datacenter-scale deployments lose nodes; the paper's models assume an
// always-healthy cluster. This simulator injects node failures (per-node
// exponential time-to-failure, fixed repair time) into the cluster-as-
// server view: a job admitted while nodes are down runs at the surviving
// capacity, lengthening its service; down nodes stop drawing power. The
// study quantifies how failures degrade both the p95 response and the
// energy-proportionality picture.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hcep/model/time_energy.hpp"
#include "hcep/util/units.hpp"

namespace hcep::cluster {

struct FailureOptions {
  double utilization = 0.5;
  std::uint64_t min_jobs = 500;
  std::uint64_t seed = 4242;
  /// Mean time between failures of ONE node (exponential).
  Seconds node_mtbf{3600.0};
  /// Fixed repair (reboot/replace) time.
  Seconds repair_time{120.0};
};

struct FailureResult {
  std::uint64_t jobs_completed = 0;
  Seconds window{};
  /// Time-averaged fraction of nodes up, weighted per node.
  double availability = 0.0;
  std::uint64_t failures = 0;
  Seconds mean_response{};
  Seconds p95_response{};
  Joules energy{};
  Watts average_power{};
  /// Mean realized service time vs the healthy-cluster service time.
  double service_inflation = 1.0;
};

/// Simulates the model's cluster under failures. The healthy-cluster
/// comparison point is the same run with an effectively infinite MTBF.
[[nodiscard]] FailureResult simulate_with_failures(
    const model::TimeEnergyModel& model, const FailureOptions& options = {});

}  // namespace hcep::cluster
