// Heterogeneity-aware dispatching (extension).
//
// The paper's model splits every job across ALL nodes (scale-out with
// rate-matched shares) and defers "dynamic adaptation of the workload" to
// complementary work. This module explores that complement: jobs are
// atomic and a front-end dispatcher assigns each to ONE node, so node
// choice matters on a heterogeneous floor. Five policies are simulated
// on the DES with full power accounting, exposing the time-energy
// consequences of heterogeneity-blind vs -aware dispatch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hcep/model/cluster_spec.hpp"
#include "hcep/util/units.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::cluster {

enum class DispatchPolicy {
  kRoundRobin,        ///< cycle over nodes, blind to type and queues
  kRandom,            ///< uniform random node
  kJoinShortestQueue, ///< fewest queued jobs, ties to the faster node
  kFastestFirst,      ///< least expected completion time (queue + speed)
  kLeastEnergy,       ///< least added energy, queue-delay as tie-breaker
};

[[nodiscard]] std::string to_string(DispatchPolicy policy);
[[nodiscard]] std::vector<DispatchPolicy> all_dispatch_policies();

struct DispatchOptions {
  DispatchPolicy policy = DispatchPolicy::kRoundRobin;
  /// Offered load as a fraction of the cluster's aggregate capacity.
  double utilization = 0.5;
  std::uint64_t jobs = 2000;
  std::uint64_t seed = 71;
};

struct NodeLoad {
  std::string node_name;
  std::uint64_t jobs_served = 0;
  double busy_fraction = 0.0;  ///< busy time / makespan
};

struct DispatchResult {
  std::uint64_t jobs = 0;
  Seconds makespan{};
  Seconds mean_response{};
  Seconds p95_response{};
  Joules energy{};          ///< exact: idle floor + per-job dynamic energy
  Watts average_power{};
  Joules energy_per_job{};      ///< per completed job
  std::vector<NodeLoad> nodes;
};

/// Simulates `options.jobs` Poisson arrivals dispatched over the
/// cluster's individual nodes. Every node runs at its group's (c, f);
/// a job executes on exactly one node in workload.units_per_job units.
/// Deterministic for a fixed seed.
[[nodiscard]] DispatchResult simulate_dispatch(
    const model::ClusterSpec& cluster, const workload::Workload& workload,
    const DispatchOptions& options);

/// One component of a multi-program job stream.
struct MixedStream {
  workload::Workload workload;
  double weight = 1.0;  ///< relative arrival share (normalized internally)
};

/// Per-program breakdown of a mixed-stream run.
struct StreamStats {
  std::string program;
  std::uint64_t jobs = 0;
  Seconds mean_response{};
  Seconds p95_response{};
};

struct MixedDispatchResult {
  DispatchResult overall;
  std::vector<StreamStats> per_program;
};

/// Mixed-stream variant: arrivals draw their program from `streams` by
/// weight ("datacenters typically receive multiple jobs concurrently from
/// many users", Section II-C). Service time and dynamic power depend on
/// BOTH the chosen node and the job's program, so heterogeneity-aware
/// policies must reason per job. Utilization is offered against the
/// weight-averaged cluster capacity.
[[nodiscard]] MixedDispatchResult simulate_mixed_dispatch(
    const model::ClusterSpec& cluster, const std::vector<MixedStream>& streams,
    const DispatchOptions& options);

}  // namespace hcep::cluster
