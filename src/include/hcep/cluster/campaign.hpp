// Measurement campaigns: utilization sweeps on the simulated testbed.
//
// The paper varies "the number of jobs per batch and number of batches in
// an observation interval" to sweep the utilization of a server or
// cluster between 0 and 1 (Section II-C). A campaign runs the simulator
// across a utilization grid and returns the *measured* power-vs-
// utilization profile and PPR samples — the empirical counterparts of the
// model's curves, used for validation and for the sampled PowerCurve
// family.
#pragma once

#include <vector>

#include "hcep/cluster/simulator.hpp"
#include "hcep/power/curve.hpp"

namespace hcep::cluster {

struct CampaignOptions {
  /// Utilization grid; defaults to {0, 0.1, ..., 0.9, 0.95}.
  std::vector<double> utilizations;
  std::uint64_t seed = 999;
  std::uint64_t min_jobs = 300;
  bool use_testbed_overheads = true;
};

struct CampaignPoint {
  double target_utilization = 0.0;
  double measured_utilization = 0.0;
  Watts average_power{};
  double throughput = 0.0;  ///< completed work units per second
  Seconds p95_response{};
  Seconds mean_response{};
};

struct CampaignResult {
  std::vector<CampaignPoint> points;

  /// Measured power profile as a sampled PowerCurve (knots at the
  /// measured utilizations, extended to u = 1 with the last sample).
  [[nodiscard]] power::PowerCurve measured_curve() const;
};

[[nodiscard]] CampaignResult run_campaign(const model::TimeEnergyModel& model,
                                          const CampaignOptions& options = {});

}  // namespace hcep::cluster
