// Systematic effects present on real hardware but absent from the
// analytic Table 2 model.
//
// The paper's Table 4 reports 1-13 % model-vs-measurement errors; those
// errors come from scheduling overhead, cache/TLB interference, memory
// contention beyond the linear model and power excursions the meter
// integrates. Our simulated testbed applies per-workload factors of the
// same nature so the validation experiment is non-trivial: the analytic
// model does NOT know these factors, the simulator does.
//
// Factor values are calibrated so the reproduction's Table 4 errors land
// at the paper's magnitudes (see EXPERIMENTS.md); they are inputs to the
// simulated *testbed*, not to the model under validation.
#pragma once

#include <string>

#include "hcep/util/units.hpp"

namespace hcep::cluster {

struct WorkloadOverheads {
  /// Multiplies every job's execution time (contention, scheduling).
  double time_factor = 1.0;
  /// Multiplies the busy-phase dynamic power (excursions, uncore effects).
  double power_factor = 1.0;
  /// Fixed per-job dispatch latency at the front-end.
  Seconds dispatch{};
  /// Coefficient of variation of per-job service-time jitter.
  double service_noise_cv = 0.02;
};

/// Per-program systematic overheads of the simulated testbed.
[[nodiscard]] WorkloadOverheads testbed_overheads(const std::string& program);

/// Identity overheads (simulator reproduces the model exactly, up to
/// meter noise) — used by tests that check trace/energy conservation.
[[nodiscard]] WorkloadOverheads ideal_overheads();

}  // namespace hcep::cluster
