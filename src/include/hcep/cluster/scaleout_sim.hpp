// Scale-out simulator with phase-level node power (extension).
//
// The job-level simulator (simulator.hpp) draws one flat busy level per
// node group. This variant renders every job at PHASE granularity using
// node_phase_trace: each node of each group steps through its
// overlap / compute-or-stall / I/O phases for its rate-matched share,
// and a per-node power trace is maintained for the whole window — the
// per-node Yokogawa channels of the paper's Fig. 4 setup.
//
// Because the phase renderer integrates exactly to the model's energy
// algebra, this simulator's per-node energies reconcile with the
// analytic model to meter precision — asserted in tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hcep/model/time_energy.hpp"
#include "hcep/power/meter.hpp"

namespace hcep::cluster {

struct ScaleoutOptions {
  double utilization = 0.5;
  std::uint64_t min_jobs = 200;
  std::uint64_t seed = 77;
};

/// One node type's per-node measurement channel.
struct NodeChannel {
  std::string node_name;
  unsigned count = 0;            ///< nodes of this type
  Joules energy_per_node{};      ///< exact trace integral over the window
  Watts average_power_per_node{};
  Joules metered_energy_per_node{};  ///< through the meter emulation
};

struct ScaleoutResult {
  std::uint64_t jobs_arrived = 0;
  std::uint64_t jobs_completed = 0;
  Seconds window{};
  Seconds mean_response{};
  Seconds p95_response{};
  double measured_utilization = 0.0;
  Joules cluster_energy{};       ///< sum over all nodes
  Watts average_power{};
  std::vector<NodeChannel> channels;
};

/// Simulates the model's cluster at phase granularity (model-exact
/// service times; no testbed overheads — this simulator's purpose is the
/// energy-algebra reconciliation, not Table 4 noise).
[[nodiscard]] ScaleoutResult simulate_scaleout(
    const model::TimeEnergyModel& model, const ScaleoutOptions& options = {});

}  // namespace hcep::cluster
