// Single-node, per-unit primitives shared by the calibration solver and the
// cluster-level time-energy model: how long one unit of work takes on a
// node at a given operating point, and the average power drawn while the
// node continuously processes units.
//
// These encode the Table 2 single-node rows:
//   T_core = cycles_core / f   (spread over c active cores)
//   T_mem  = cycles_mem / f    (shared memory controller, partial scaling)
//   T_CPU  = max(T_core, T_mem)      -- out-of-order overlap
//   T_I/O  = io_bytes / NIC bandwidth -- DMA overlaps with CPU
//   T      = max(T_CPU, T_I/O)
#pragma once

#include "hcep/hw/node.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::workload {

/// Per-unit phase times on one node.
struct UnitTime {
  Seconds core{};   ///< time executing work cycles (per unit)
  Seconds mem{};    ///< time servicing memory stalls
  Seconds cpu{};    ///< max(core, mem)
  Seconds io{};     ///< network transfer time
  Seconds total{};  ///< max(cpu, io)
};

/// Computes per-unit phase times for `demand` on `node` with
/// `active_cores` cores at frequency `f`.
[[nodiscard]] UnitTime unit_time(const NodeDemand& demand,
                                 const hw::NodeSpec& node,
                                 unsigned active_cores, Hertz f);

/// Units of work per second when the node continuously processes units.
[[nodiscard]] double unit_throughput(const NodeDemand& demand,
                                     const hw::NodeSpec& node,
                                     unsigned active_cores, Hertz f);

/// Average node power while continuously processing units, with the
/// workload's dynamic-power calibration factor applied. Component
/// occupancies follow the phase times: cores draw active power during
/// T_core and stall power during max(0, T_mem - T_core); the memory system
/// is busy during T_mem and the NIC during T_I/O.
[[nodiscard]] Watts busy_power(const NodeDemand& demand,
                               const hw::NodeSpec& node, unsigned active_cores,
                               Hertz f, double power_scale = 1.0);

/// Energy consumed per unit of work = busy_power * unit total time.
[[nodiscard]] Joules unit_energy(const NodeDemand& demand,
                                 const hw::NodeSpec& node,
                                 unsigned active_cores, Hertz f,
                                 double power_scale = 1.0);

}  // namespace hcep::workload
