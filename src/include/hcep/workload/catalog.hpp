// Workload catalog: builds the six paper workloads end-to-end — run the
// instrumented kernels, characterize them on the requested node types, and
// (for A9/K10) calibrate against the paper's published Table 6/7 seeds.
//
// Construction is deterministic and moderately expensive (the RSA kernel
// really exponentiates); callers should build the catalog once and share
// it. The paper's job sizes are not published; ours are chosen so the
// response-time figures land in the paper's ranges (Fig. 11: tens of ms
// for EP; Fig. 12: seconds for x264) and are documented per workload.
#pragma once

#include <string>
#include <vector>

#include "hcep/hw/node.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::workload {

/// Options controlling catalog construction.
struct CatalogOptions {
  /// Node types to characterize on (defaults to the paper's A9 + K10).
  std::vector<hw::NodeSpec> nodes;
  /// Calibrate against paper seeds where available.
  bool calibrate = true;
  /// Kernel RNG seed (characterization inputs).
  std::uint64_t seed = 42;
  /// Characterization run-length multiplier (1.0 = defaults).
  double units_factor = 1.0;
};

/// Builds all six paper workloads. With default options each profile
/// carries calibrated demands for A9 and K10.
[[nodiscard]] std::vector<Workload> paper_workloads(
    const CatalogOptions& options = {});

/// Builds a single workload by program name.
[[nodiscard]] Workload make_workload(const std::string& program,
                                     const CatalogOptions& options = {});

/// Program names in paper order.
[[nodiscard]] std::vector<std::string> program_names();

/// Job size (work units per job) used throughout the reproduction.
[[nodiscard]] double default_units_per_job(const std::string& program);

/// Table 1's P_s — "program P with smaller input size": the same
/// characterized profile with the per-job work scaled by `factor`
/// (0 < factor; < 1 shrinks the input). Demands per unit are unchanged
/// (scale-out workloads repeat parallel phases), so execution time and
/// energy-above-idle scale linearly with the factor.
[[nodiscard]] Workload with_input_scale(Workload w, double factor);

}  // namespace hcep::workload
