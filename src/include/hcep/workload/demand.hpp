// Workload service-demand representation.
//
// The paper characterizes a program P on each node type as total CPU work
// cycles, memory-stall cycles and I/O demand (Table 1/2). We carry those
// quantities per *unit of work* (random number, option, frame, ...) so the
// same profile serves jobs of any size; the time model multiplies by the
// units assigned to a node.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "hcep/util/units.hpp"

namespace hcep::workload {

/// Demand of one work unit on one node type, measured at the node's
/// maximum frequency (Table 2 divides cycle counts by the operating f).
struct NodeDemand {
  double cycles_core = 0.0;  ///< work cycles on one core per unit
  double cycles_mem = 0.0;   ///< memory-stall cycles per unit
  Bytes io_bytes{};          ///< network bytes per unit

  /// Scales every field by k (used by the calibration solver).
  [[nodiscard]] NodeDemand scaled(double k) const;
};

/// Per-node power calibration produced by the calibration solver: the
/// dynamic power components of the node are multiplied by `power_scale`
/// when running this workload, pinning the model's busy power to the
/// paper-derived per-workload peak.
struct NodePowerCal {
  double power_scale = 1.0;
  Watts peak_power{};        ///< model busy power at (c_max, f_max)
  double peak_throughput = 0.0;  ///< units/s at (c_max, f_max)
};

/// A fully described workload: demands (and optional power calibration)
/// per node type, plus job sizing and I/O arrival parameters.
struct Workload {
  std::string name;       ///< paper program name ("EP", "x264", ...)
  std::string work_unit;  ///< Table 6 unit ("random no.", "frames", ...)
  double units_per_job = 1.0;  ///< work units constituting one job
  /// I/O request inter-arrival floor 1/lambda_I/O (Table 2); zero when the
  /// workload is not request-paced.
  Seconds io_request_interval{};

  std::map<std::string, NodeDemand> demand;     ///< keyed by node name
  std::map<std::string, NodePowerCal> power_cal;  ///< keyed by node name

  [[nodiscard]] const NodeDemand& demand_for(const std::string& node) const;
  [[nodiscard]] double power_scale_for(const std::string& node) const;
  [[nodiscard]] bool has_node(const std::string& node) const;
};

}  // namespace hcep::workload
