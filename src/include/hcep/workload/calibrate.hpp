// Calibration: pins a characterized workload profile to measurement
// targets.
//
// The authors' measured per-(workload, node) parameters are not public.
// What the paper does publish per (program, node) is the PPR at the most
// energy-efficient configuration (Table 6) and the idle-to-peak ratio IPR
// (Table 7), plus the node idle powers (A9 ~1.8 W, K10 ~45 W). Those pin
// the two absolute scales our synthetic substrate cannot know:
//
//   peak power      P_peak = P_idle / IPR
//   peak throughput X_peak = PPR * P_peak
//
// Calibration rescales the kernel-derived demand so the model's
// throughput at (c_max, f_max) equals X_peak — preserving the workload's
// measured phase *mix* — and applies a dynamic-power factor so the busy
// power equals P_peak. Everything the paper reports downstream (Table 8,
// Figures 5-12) is then *derived* by the models from these seeds.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "hcep/hw/node.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::workload {

/// Published targets for one (program, node) pair.
struct CalibrationTarget {
  double ppr = 0.0;  ///< Table 6: work units per second per watt
  double ipr = 0.0;  ///< Table 7: P_idle / P_peak
};

/// Table 6 + Table 7 values for the paper's six programs on A9 and K10.
/// Keyed by program name, then node name.
[[nodiscard]] const std::map<std::string,
                             std::map<std::string, CalibrationTarget>>&
paper_targets();

/// Convenience lookup; empty when the pair is not in the paper.
[[nodiscard]] std::optional<CalibrationTarget> paper_target(
    const std::string& program, const std::string& node);

/// Calibrates `w`'s demand and power for `node` against `target`,
/// mutating the profile in place and recording the NodePowerCal.
/// Requires the profile to already contain a characterized demand for the
/// node. Throws hcep::PreconditionError on inconsistent targets
/// (ipr outside (0,1), non-positive ppr).
void calibrate_node(Workload& w, const hw::NodeSpec& node,
                    const CalibrationTarget& target);

/// Derived quantities exposed for reporting/tests.
[[nodiscard]] Watts target_peak_power(const hw::NodeSpec& node,
                                      const CalibrationTarget& target);
[[nodiscard]] double target_peak_throughput(const hw::NodeSpec& node,
                                            const CalibrationTarget& target);

}  // namespace hcep::workload
