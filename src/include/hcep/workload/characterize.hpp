// Workload characterization: the "Micro-benchmarks -> Workload
// Characterization" stage of the paper's Figure 1 methodology.
//
// Runs an instrumented kernel, collects its per-unit operation counts, and
// maps them through a node's micro-architectural cost model to the
// (cycles_core, cycles_mem, io_bytes) tuple the time-energy model consumes
// — standing in for the authors' perf-counter measurements on real nodes.
#pragma once

#include <cstdint>

#include "hcep/hw/node.hpp"
#include "hcep/kernels/kernel.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::workload {

/// Maps already-collected per-unit operation counts onto a node.
[[nodiscard]] NodeDemand demand_from_counts(const kernels::OpCounts& per_unit,
                                            const hw::NodeSpec& node);

/// Runs `kernel` for `units` units of work and characterizes it on `node`.
/// `seed` fixes the kernel's stochastic inputs.
[[nodiscard]] NodeDemand characterize(kernels::Kernel& kernel,
                                      const hw::NodeSpec& node,
                                      std::uint64_t units,
                                      std::uint64_t seed = 42);

/// Default characterization run lengths per program — large enough that
/// per-unit counts are stable, small enough to keep the pipeline quick.
[[nodiscard]] std::uint64_t default_characterization_units(
    const std::string& program);

}  // namespace hcep::workload
