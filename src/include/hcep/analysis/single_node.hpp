// Single-node energy-proportionality analysis (Section III-A/III-B):
// per (program, node type) the power-vs-utilization profile, the Table 7
// metric set, and the Table 6 peak PPR.
#pragma once

#include <string>
#include <vector>

#include "hcep/hw/node.hpp"
#include "hcep/metrics/proportionality.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/power/curve.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::analysis {

struct NodeWorkloadAnalysis {
  std::string program;
  std::string node;
  std::string work_unit;
  power::PowerCurve curve;                  ///< single-node P(u)
  metrics::ProportionalityReport report;    ///< DPR/IPR/EPM/LDR (Table 7)
  double peak_throughput = 0.0;             ///< units/s at u = 1
  double ppr_peak = 0.0;                    ///< Table 6 PPR
  Watts idle_power{};
  Watts peak_power{};
};

/// Analyzes one workload on a single node of the given type.
/// `family`/`curvature` select the power-profile family (the paper's model
/// is linear; quadratic supports the Hsu-Poole ablation).
[[nodiscard]] NodeWorkloadAnalysis analyze_single_node(
    const workload::Workload& workload, const hw::NodeSpec& node,
    model::CurveFamily family = model::CurveFamily::kLinear,
    double curvature = 0.3);

/// Convenience: the (percent-utilization, percent-of-peak-power) series of
/// Figure 5, sampled at the given utilization percents.
[[nodiscard]] std::vector<std::pair<double, double>> proportionality_series(
    const power::PowerCurve& curve, const std::vector<double>& util_percents);

/// The (percent-utilization, PPR) series of Figure 6.
[[nodiscard]] std::vector<std::pair<double, double>> ppr_series(
    const power::PowerCurve& curve, double peak_throughput,
    const std::vector<double>& util_percents);

}  // namespace hcep::analysis
