// JSON serialization of study results for downstream tooling (dashboards,
// notebooks, regression tracking).
#pragma once

#include "hcep/analysis/cluster_study.hpp"
#include "hcep/analysis/pareto_study.hpp"
#include "hcep/analysis/response_study.hpp"
#include "hcep/analysis/single_node.hpp"
#include "hcep/analysis/validation.hpp"
#include "hcep/core/paper_study.hpp"
#include "hcep/util/json.hpp"

namespace hcep::analysis {

[[nodiscard]] JsonValue to_json(const ValidationRow& row);
[[nodiscard]] JsonValue to_json(const NodeWorkloadAnalysis& a);
[[nodiscard]] JsonValue to_json(const MixAnalysis& m);
[[nodiscard]] JsonValue to_json(const ParetoMixAnalysis& m);
[[nodiscard]] JsonValue to_json(const MixResponse& m);

/// The full reproduction as one JSON document:
/// { "table4": [...], "single_node": [...], "table8": {program: [...]},
///   "pareto": {...}, "response": {...} }.
[[nodiscard]] JsonValue export_study(const core::PaperStudy& study);

}  // namespace hcep::analysis
