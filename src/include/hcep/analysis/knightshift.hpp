// KnightShift-style server-level heterogeneity (extension).
//
// The paper positions itself against KnightShift (Wong & Annavaram,
// MICRO'12 / IEEE Micro'13, refs [43], [44]): a wimpy "knight" fronts a
// brawny primary and serves alone at low utilization while the primary
// sleeps. That is INTRA-server heterogeneity; the paper studies
// INTER-node mixes. This module models a KnightShift composite so the two
// approaches can be compared with the same metric suite:
//
//   u <= threshold : knight active, primary in a sleep state
//   u >  threshold : primary active at the residual load, knight idles
//
// where threshold = knight capacity / primary capacity. The composite
// power curve is genuinely non-linear (a sawtooth with a wake step), so
// the literal Table 3 LDR and PG(u) become informative.
#pragma once

#include "hcep/hw/node.hpp"
#include "hcep/metrics/proportionality.hpp"
#include "hcep/power/curve.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::analysis {

struct KnightShiftSpec {
  hw::NodeSpec knight;   ///< wimpy front (defaults: Cortex-A9)
  hw::NodeSpec primary;  ///< brawny primary (defaults: Opteron K10)
  /// Residual power of the sleeping primary (suspend-to-RAM class).
  Watts primary_sleep{3.0};
  /// Knight draw while the primary serves (it keeps the NIC/state warm).
  Watts knight_shadow{1.0};
};

/// Defaults to the paper's node pair.
[[nodiscard]] KnightShiftSpec default_knightshift();

struct KnightShiftAnalysis {
  power::PowerCurve curve;   ///< composite power vs whole-system utilization
  double switch_threshold = 0.0;  ///< u where the primary wakes
  double peak_throughput = 0.0;   ///< primary capacity (units/s)
  metrics::ProportionalityReport report;
};

/// Builds the composite curve for `workload` and runs the metric suite.
/// Requires workload demand for both node types.
[[nodiscard]] KnightShiftAnalysis analyze_knightshift(
    const workload::Workload& workload,
    const KnightShiftSpec& spec = default_knightshift());

}  // namespace hcep::analysis
