// Markdown report generation: renders every reproduction study into one
// document (the `paper_report` example writes REPORT.md with it).
#pragma once

#include <string>

#include "hcep/core/paper_study.hpp"

namespace hcep::analysis {

struct ReportOptions {
  /// Include the (slow) full-space Pareto frontier in the Fig. 9/10
  /// sections.
  bool include_frontier = false;
  /// Cross-check the response studies on the DES (slower).
  bool cross_check_des = false;
  /// Append an observability section: trace one EP cluster run, push it
  /// through obs::make_run_report and render the profile, queue
  /// decomposition and energy-attribution rollup. Degrades to a note
  /// when the instrumentation is compiled out (HCEP_OBS=0).
  bool include_observability = false;
  /// Append a traffic section: drive the A9+K10 cluster with a mixed
  /// Poisson request stream through admission control and render the
  /// request ledger, latency order statistics and per-class SLO table.
  bool include_traffic = false;
};

/// Renders the complete paper reproduction (Tables 4-8, Figures 5-12
/// data, sub-linearity summary) as GitHub-flavoured markdown.
[[nodiscard]] std::string render_report(const core::PaperStudy& study,
                                        const ReportOptions& options = {});

/// Renders one markdown table from header + rows (helper, exposed for
/// reuse and testing).
[[nodiscard]] std::string markdown_table(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows);

}  // namespace hcep::analysis
