// Model validation (Table 4): the analytic Table 2 model against the
// simulated testbed's measured execution time and energy per job.
//
// The paper validates against the physical Fig. 4 setup; we validate the
// same model against the DES testbed, whose systematic overheads
// (hcep/cluster/overheads.hpp) the model does not know. Errors are
// percent differences, as Table 4 defines them.
#pragma once

#include <string>
#include <vector>

#include "hcep/model/cluster_spec.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::analysis {

struct ValidationRow {
  std::string program;
  std::string domain;      ///< Table 4's application-domain column
  Seconds model_time{};
  Seconds measured_time{};
  Joules model_energy{};
  Joules measured_energy{};
  double time_error_percent = 0.0;
  double energy_error_percent = 0.0;
};

struct ValidationOptions {
  /// Validation cluster; empty groups selects the default 4 A9 + 2 K10
  /// testbed mirroring the Fig. 4 setup.
  model::ClusterSpec cluster;
  std::uint64_t jobs = 40;  ///< batch length per measurement
  std::uint64_t seed = 2016;
};

/// Table 4's application-domain label for a program.
[[nodiscard]] std::string program_domain(const std::string& program);

/// Validates one workload; model vs measured per-job time and energy.
[[nodiscard]] ValidationRow validate_workload(
    const workload::Workload& workload, const ValidationOptions& options = {});

/// Validates a set of workloads (one Table 4 row each).
[[nodiscard]] std::vector<ValidationRow> validate_all(
    const std::vector<workload::Workload>& workloads,
    const ValidationOptions& options = {});

}  // namespace hcep::analysis
