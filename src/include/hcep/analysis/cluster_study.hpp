// Cluster-wide energy-proportionality analysis (Section III-C): the
// Table 8 metrics and Figure 7/8 curves for power-budget-constrained
// cluster mixes.
#pragma once

#include <string>
#include <vector>

#include "hcep/metrics/proportionality.hpp"
#include "hcep/model/cluster_spec.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/power/curve.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::analysis {

struct MixAnalysis {
  std::string label;                      ///< e.g. "64A9:8K10"
  power::PowerCurve curve;                ///< cluster P(u), nodes only
  metrics::ProportionalityReport report;  ///< Table 8 row cells
  double peak_throughput = 0.0;
  Watts idle_power{};
  Watts peak_power{};
  Watts nameplate{};                      ///< budget accounting incl switch
};

/// Analyzes one workload across a set of cluster mixes (defaults used by
/// the benches: config::paper_budget_mixes()).
[[nodiscard]] std::vector<MixAnalysis> analyze_mixes(
    const std::vector<model::ClusterSpec>& mixes,
    const workload::Workload& workload,
    model::CurveFamily family = model::CurveFamily::kLinear,
    double curvature = 0.3);

}  // namespace hcep::analysis
