// Calibration-sensitivity study (extension).
//
// Our reproduction seeds the models with the paper's published PPR/IPR
// values (DESIGN.md §1). Are the paper's *conclusions* robust to
// measurement error in those seeds? This study perturbs the seeds with
// multiplicative noise, re-runs calibration, and tracks the derived
// conclusions across trials:
//   - Table 6's PPR winner per program (does it ever flip?)
//   - Table 8's mixed-cluster DPR spread
//   - Figure 9's sub-linearity boundary (the (25,7)-at-50 % example)
#pragma once

#include <cstdint>
#include <string>

#include "hcep/util/stats.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::analysis {

struct SensitivityOptions {
  /// Multiplicative 1-sigma noise on the PPR seeds.
  double ppr_noise = 0.10;
  /// Multiplicative 1-sigma noise on the IPR seeds (clamped to (0.05, 0.98)).
  double ipr_noise = 0.05;
  unsigned trials = 200;
  std::uint64_t seed = 424242;
};

struct SensitivityResult {
  unsigned trials = 0;
  /// How often the Table 6 winner (A9 vs K10 by PPR) flipped vs nominal.
  unsigned winner_flips = 0;
  /// DPR of the 64A9:8K10 mix across trials (Table 8 middle column).
  RunningStats dpr_mixed;
  /// Sub-linearity crossover of the 25A9:7K10 mix (Figure 9's example).
  RunningStats crossover_25_7;
  /// Trials in which 25A9:7K10 was sub-linear at u = 50 % (paper: yes).
  unsigned sublinear_at_half_25_7 = 0;
  /// Trials in which 25A9:8K10 stayed super-linear at 50 % (paper: yes).
  unsigned superlinear_at_half_25_8 = 0;
};

/// Runs the perturbation study for one program. Characterization runs
/// once; each trial only re-runs calibration and the derived analyses.
[[nodiscard]] SensitivityResult run_sensitivity_study(
    const std::string& program, const SensitivityOptions& options = {});

}  // namespace hcep::analysis
