// 95th-percentile response-time analysis of sub-linear mixes
// (Section III-E, Figures 11/12).
//
// Each mix runs at its minimum-energy operating point that still meets
// the workload's execution-time deadline (the energy-deadline Pareto
// discipline of [31]); a mix that cannot meet the deadline runs flat out.
// Jobs queue M/D/1 at the dispatcher, so the 95th-percentile response at
// utilization u is the M/D/1 95th-percentile wait plus the service time.
// The paper's claim falls out: for EP (wimpy PPR > brawny PPR) every mix
// meets the deadline and the curves differ sub-millisecond; for x264
// (brawny PPR > wimpy) the K10-poor mixes miss it by seconds.
#pragma once

#include <string>
#include <vector>

#include "hcep/analysis/pareto_study.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::analysis {

struct ResponseStudyOptions {
  std::vector<MixCounts> mixes;      ///< empty selects paper_pareto_mixes()
  /// Execution-time deadline; zero selects the per-workload default
  /// (default_deadline()).
  Seconds deadline{};
  /// Utilization grid in percent; empty selects {20, 30, ..., 90, 95}.
  std::vector<double> utilization_percents;
  /// Also measure each point on the DES testbed (slower).
  bool cross_check_des = false;
  std::uint64_t seed = 31;
};

struct ResponsePoint {
  double utilization_percent = 0.0;
  Seconds p95_analytic{};   ///< M/D/1 95th-percentile response
  Seconds p95_simulated{};  ///< DES measurement (when requested)
};

struct MixResponse {
  MixCounts mix;
  bool meets_deadline = false;
  Seconds service_time{};           ///< realized job time at the chosen point
  Joules job_energy{};
  std::vector<ResponsePoint> points;
};

struct ResponseStudyResult {
  Seconds deadline{};
  std::vector<MixResponse> mixes;
};

/// Per-workload deadline used by the reproduction (chosen so the weakest
/// paper mix sits at the edge for EP and misses for x264; see DESIGN.md).
[[nodiscard]] Seconds default_deadline(const std::string& program);

[[nodiscard]] ResponseStudyResult run_response_study(
    const workload::Workload& workload,
    const ResponseStudyOptions& options = {});

}  // namespace hcep::analysis
