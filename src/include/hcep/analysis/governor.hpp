// DVFS governor study (extension).
//
// The paper fixes each configuration's (cores, frequency) and modulates
// utilization through job arrivals — effectively a race-to-idle governor
// at the chosen operating point. The natural follow-up for a datacenter
// operator: at sustained utilization u, is it cheaper to race at f_max
// and idle, or to pace — drop to the slowest (c, f) whose capacity still
// covers the load? This study answers that per mix and per utilization
// with the same model, quantifying how far DVFS pacing pushes the
// effective power curve toward (or past) the ideal line.
#pragma once

#include <string>
#include <vector>

#include "hcep/analysis/pareto_study.hpp"
#include "hcep/metrics/proportionality.hpp"
#include "hcep/power/curve.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::analysis {

struct GovernorPoint {
  double utilization = 0.0;
  Watts race_power{};        ///< race-to-idle at (c_max, f_max)
  Watts pace_power{};        ///< best pacing operating point
  std::string pace_label;    ///< chosen (c, f) per type, e.g. "A9@4c/0.8GHz"
  double saving_percent = 0.0;  ///< (race - pace) / race * 100
};

struct GovernorStudyResult {
  std::vector<GovernorPoint> points;
  /// Effective pacing power curve (sampled at the study grid).
  power::PowerCurve pace_curve;
  /// Race-to-idle curve (the paper's linear profile).
  power::PowerCurve race_curve;
  metrics::ProportionalityReport race_report;
  metrics::ProportionalityReport pace_report;
};

struct GovernorStudyOptions {
  MixCounts mix{4, 2};
  /// Utilization grid; empty selects {0.1 ... 1.0}.
  std::vector<double> utilizations;
};

/// Runs the race-vs-pace comparison for one workload on one mix.
[[nodiscard]] GovernorStudyResult run_governor_study(
    const workload::Workload& workload,
    const GovernorStudyOptions& options = {});

}  // namespace hcep::analysis
