// Power-cap study (extension).
//
// The paper budgets *nameplate* power (1 kW buys the mixes of Table 8);
// operators also cap *drawn* power (RAPL-style). Under a cap C on average
// cluster power, how much throughput survives? Two regimes per mix:
//
//   race:   stay at (c_max, f_max); the cap limits the duty cycle, so
//           X(C) = X_peak * min(1, (C - P_idle)/(P_busy - P_idle))
//   paced:  additionally allow any (c, f) operating point; slower points
//           draw less power per unit of work and can beat racing under
//           tight caps.
//
// The study sweeps caps and reports both, plus the paced operating point
// chosen at each cap — quantifying how the DVFS dimension softens power
// capping on heterogeneous mixes.
#pragma once

#include <string>
#include <vector>

#include "hcep/analysis/pareto_study.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::analysis {

struct PowerCapPoint {
  Watts cap{};
  double race_throughput = 0.0;   ///< units/s sustainable when racing
  double paced_throughput = 0.0;  ///< units/s at the best operating point
  std::string paced_label;        ///< chosen (c, f) per type
  /// paced / race; > 1 where pacing beats racing (0 race throughput with
  /// positive paced throughput reports infinity()).
  double pacing_gain = 1.0;
};

struct PowerCapStudyResult {
  Watts idle_power{};  ///< caps below this sustain nothing
  Watts busy_power{};  ///< caps above this don't bind
  std::vector<PowerCapPoint> points;
};

struct PowerCapOptions {
  MixCounts mix{4, 2};
  /// Caps to sweep; empty selects 10 points between idle and busy power.
  std::vector<Watts> caps;
};

[[nodiscard]] PowerCapStudyResult run_power_cap_study(
    const workload::Workload& workload, const PowerCapOptions& options = {});

}  // namespace hcep::analysis
