// Pareto-configuration proportionality analysis (Section III-D,
// Figures 9/10): does inter-node heterogeneity scale the energy-
// proportionality wall?
//
// Given a node budget (the paper uses at most 32 A9 + 12 K10), the study
// computes the energy-deadline Pareto frontier over the full
// configuration space and, for the paper's labelled mixes, the power
// profile normalized against the *reference* (largest) configuration's
// peak. Mixes whose profile dips below the ideal-proportional line of
// that reference are the sub-linear configurations the paper highlights.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hcep/config/pareto.hpp"
#include "hcep/power/curve.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::analysis {

/// An (n_a9, n_k10) mix highlighted in Figures 9-12.
struct MixCounts {
  unsigned a9 = 0;
  unsigned k10 = 0;
  [[nodiscard]] std::string label() const;
};

/// The five mixes the paper labels: (32,12) (25,10) (25,8) (25,7) (25,5).
[[nodiscard]] std::vector<MixCounts> paper_pareto_mixes();

struct ParetoMixAnalysis {
  MixCounts mix;
  power::PowerCurve curve;        ///< cluster P(u) at full cores/frequency
  double crossover_utilization;   ///< u where it becomes sub-linear (>1 = never)
  bool sublinear_at_half;         ///< below ideal at u = 0.5 (paper's example)
  Seconds best_job_time{};        ///< fastest achievable T_P for one job
  Joules best_job_energy{};       ///< energy at that operating point
};

struct ParetoStudyOptions {
  unsigned max_a9 = 32;
  unsigned max_k10 = 12;
  std::vector<MixCounts> mixes;  ///< empty selects paper_pareto_mixes()
  /// Compute the full-space Pareto frontier (36k+ evaluations) too.
  bool compute_frontier = true;
};

struct ParetoStudyResult {
  Watts reference_peak{};                 ///< largest mix's busy power
  std::vector<ParetoMixAnalysis> mixes;
  std::vector<config::Evaluation> frontier;  ///< energy-deadline frontier
};

[[nodiscard]] ParetoStudyResult run_pareto_study(
    const workload::Workload& workload, const ParetoStudyOptions& options = {});

/// Minimum-energy operating point (active cores / frequency per type) for
/// fixed node counts under a deadline; nullopt when the mix cannot meet
/// it at any operating point.
[[nodiscard]] std::optional<config::Evaluation> best_operating_point(
    const MixCounts& mix, const workload::Workload& workload,
    Seconds deadline);

/// Fastest operating point for fixed node counts (all cores, f_max).
[[nodiscard]] config::Evaluation fastest_operating_point(
    const MixCounts& mix, const workload::Workload& workload);

}  // namespace hcep::analysis
