// Power-meter emulation.
//
// The paper measures node power/energy with a Yokogawa WT210 (Fig. 4):
// a sampling wattmeter whose energy readout integrates discrete samples
// and carries instrument noise. The cluster simulator produces an exact
// piecewise-constant power trace; PowerMeter turns that trace into a
// realistic *measured* energy so the model-vs-measurement errors of
// Table 4 are non-trivial.
#pragma once

#include <cstdint>
#include <vector>

#include "hcep/util/rng.hpp"
#include "hcep/util/units.hpp"

namespace hcep::power {

/// One step of a piecewise-constant power trace.
struct PowerSample {
  Seconds start{};
  Watts level{};
};

/// Piecewise-constant power trace (steps sorted by start time).
class PowerTrace {
 public:
  /// Appends a step; start times must be non-decreasing.
  void step(Seconds start, Watts level);

  [[nodiscard]] bool empty() const { return steps_.empty(); }
  [[nodiscard]] const std::vector<PowerSample>& steps() const { return steps_; }

  /// Instantaneous power at time t (zero before the first step).
  [[nodiscard]] Watts at(Seconds t) const;

  /// Exact integral of the trace over [0, horizon].
  [[nodiscard]] Joules energy(Seconds horizon) const;

  /// Exact average power over [0, horizon].
  [[nodiscard]] Watts average(Seconds horizon) const;

 private:
  std::vector<PowerSample> steps_;
};

/// Sampling wattmeter model.
struct MeterSpec {
  Hertz sample_rate{10.0};      ///< WT210 update rate ~10 Hz
  double gain_error = 0.001;    ///< +/-0.1 % reading accuracy class
  Watts noise_floor{0.05};      ///< additive white noise sigma
  Watts quantization{0.01};     ///< display resolution
};

class PowerMeter {
 public:
  explicit PowerMeter(MeterSpec spec = {}, std::uint64_t seed = 7);

  /// Time-resolved readings over [0, horizon]: one (interval start,
  /// reading) per sampling period, the instrument's internal integrand.
  /// The observability layer exports this series directly.
  [[nodiscard]] std::vector<PowerSample> sample_series(
      const PowerTrace& trace, Seconds horizon);

  /// Samples the trace over [0, horizon] and integrates: the "measured"
  /// energy the Table 4 validation compares against the model.
  [[nodiscard]] Joules measure_energy(const PowerTrace& trace,
                                      Seconds horizon);

  /// Measured average power over the window.
  [[nodiscard]] Watts measure_average(const PowerTrace& trace,
                                      Seconds horizon);

 private:
  [[nodiscard]] Watts sample(Watts true_power);

  MeterSpec spec_;
  // Seeded from the ctor's `seed` parameter in meter.cpp; the per-file
  // analysis cannot see the out-of-line mem-initializer.
  Rng rng_;  // hcep-lint: allow(rng-seed-flow)
};

}  // namespace hcep::power
