// Power-vs-utilization profiles.
//
// The paper's model yields power linear in utilization between P_idle and
// P_peak (its jobs run at full tilt or not at all). The energy-
// proportionality literature it engages (Hsu & Poole, ICPP'13) observes
// that real servers trend quadratic. A PowerCurve abstracts the family so
// every metric works on either: linear (the paper), quadratic (Hsu-Poole
// ablation) or sampled (measured traces from the cluster simulator).
#pragma once

#include <functional>

#include "hcep/util/math.hpp"
#include "hcep/util/units.hpp"

namespace hcep::power {

class PowerCurve {
 public:
  /// P(u) = P_idle + u (P_peak - P_idle), u in [0, 1].
  [[nodiscard]] static PowerCurve linear(Watts idle, Watts peak);

  /// Hsu-Poole-style quadratic: P(u) = P_idle + (P_peak - P_idle)
  /// ((1-a) u + a u^2). `a` in [-1, 1]: positive bows the curve below the
  /// secant (power lags utilization), negative bows it above.
  [[nodiscard]] static PowerCurve quadratic(Watts idle, Watts peak, double a);

  /// From measured samples: utilization knots in [0, 1] against watts.
  [[nodiscard]] static PowerCurve sampled(PiecewiseLinear watts_vs_u);

  /// Power at utilization u (clamped to [0, 1]).
  [[nodiscard]] Watts at(double u) const;

  [[nodiscard]] Watts idle() const { return at(0.0); }
  [[nodiscard]] Watts peak() const { return at(1.0); }

  /// Integral of P(u) du over [0, 1] (the EPM area term), in watt-units.
  [[nodiscard]] double area() const;

  /// Pointwise sum — the cluster curve is the sum of node curves.
  friend PowerCurve operator+(const PowerCurve& x, const PowerCurve& y);
  /// Curve scaled by a node count.
  [[nodiscard]] PowerCurve scaled(double k) const;

 private:
  explicit PowerCurve(PiecewiseLinear samples);
  PiecewiseLinear samples_;  ///< watts vs u in [0, 1]
};

}  // namespace hcep::power
