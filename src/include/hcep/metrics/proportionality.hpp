// Energy-proportionality metrics (Table 3 / Section II-B).
//
// All metrics operate on a PowerCurve P(u), u in [0, 1]:
//
//   DPR    = 100 (1 - P(0)/P(1))            dynamic power range, %
//   IPR    = P(0) / P(1)                    idle-to-peak ratio
//   EPM    = 1 - (int p - int ideal)/int ideal, p = P/P_peak normalized
//   LDR    = max-signed relative deviation of P(u) from the idle->peak
//            secant (Varsamopoulos & Gupta, Table 3 definition)
//   PG(u)  = (p(u) - u)/u                   proportionality gap at u
//   PPR(u) = throughput(u) / P(u)           performance-to-power ratio
//
// NOTE on LDR: for the paper's linear model-driven profiles the literal
// Table 3 LDR is identically zero, yet Tables 7/8 report LDR = EPM =
// 1 - IPR. ldr_paper() reproduces the published convention (deviation
// area against the ideal-proportional line — numerically EPM); ldr()
// keeps the literal definition, which is informative for the quadratic
// and sampled profiles. Reproduction benches print both.
#pragma once

#include "hcep/power/curve.hpp"
#include "hcep/util/math.hpp"

namespace hcep::metrics {

[[nodiscard]] double dpr(const power::PowerCurve& curve);
[[nodiscard]] double ipr(const power::PowerCurve& curve);
[[nodiscard]] double epm(const power::PowerCurve& curve);
[[nodiscard]] double ldr(const power::PowerCurve& curve,
                         std::size_t grid = 256);
[[nodiscard]] double ldr_paper(const power::PowerCurve& curve);
/// Proportionality gap at utilization u in (0, 1].
[[nodiscard]] double pg(const power::PowerCurve& curve, double u);
/// PPR at utilization u: `peak_throughput` is the cluster's full-load
/// work rate; delivered throughput scales linearly with u.
[[nodiscard]] double ppr(const power::PowerCurve& curve,
                         double peak_throughput, double u);

/// All scalar metrics at once (one Table 7/8 cell group).
struct ProportionalityReport {
  double dpr = 0.0;
  double ipr = 0.0;
  double epm = 0.0;
  double ldr_literal = 0.0;
  double ldr_paper = 0.0;
};
[[nodiscard]] ProportionalityReport analyze(const power::PowerCurve& curve);

/// Percent-of-peak-power at percent-utilization — the y-value of the
/// Figure 5/7/9 plots. `reference_peak` defaults to the curve's own peak;
/// pass the largest configuration's peak to reproduce the Figure 9/10
/// normalization, where sub-linear configurations dip below the ideal
/// line because their absolute power is below the reference's
/// proportional share.
[[nodiscard]] double percent_of_peak(const power::PowerCurve& curve,
                                     double utilization_percent,
                                     Watts reference_peak = Watts{0.0});

/// True when the curve lies below the ideal-proportional line of
/// `reference_peak` at utilization u (the paper's sub-linearity notion in
/// Section III-D).
[[nodiscard]] bool is_sublinear_at(const power::PowerCurve& curve, double u,
                                   Watts reference_peak);

/// Smallest utilization in (0, 1] at which the curve becomes sub-linear
/// w.r.t. `reference_peak`; returns > 1 when it never does.
[[nodiscard]] double sublinear_crossover(const power::PowerCurve& curve,
                                         Watts reference_peak,
                                         std::size_t grid = 512);

}  // namespace hcep::metrics
