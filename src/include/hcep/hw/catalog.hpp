// The node catalog: the two Table 5 nodes the paper validates with, plus
// two extension nodes (Cortex-A15, Xeon-class) used by the what-if examples
// to show the analysis generalizes beyond the paper's testbed.
#pragma once

#include <string>
#include <vector>

#include "hcep/hw/node.hpp"

namespace hcep::hw {

/// ARM Cortex-A9 wimpy node (Table 5 left column): 4 cores, 0.2-1.4 GHz
/// (5 DVFS points), 1 GB LP-DDR2, 100 Mbps NIC, ~1.8 W idle / 5 W peak.
[[nodiscard]] NodeSpec cortex_a9();

/// AMD Opteron K10 brawny node (Table 5 right column): 6 cores,
/// 0.8-2.1 GHz (3 DVFS points), 8 GB DDR3, 1 Gbps NIC, ~45 W idle /
/// 60 W nameplate peak, crypto-accelerated RSA.
[[nodiscard]] NodeSpec opteron_k10();

/// Extension: ARM Cortex-A15 node (not in the paper) — wimpy class but with
/// roughly 2x the A9's per-clock performance and memory bandwidth.
[[nodiscard]] NodeSpec cortex_a15();

/// Extension: Xeon-class brawny node (not in the paper) — more cores and
/// bandwidth than the K10 at a higher idle floor.
[[nodiscard]] NodeSpec xeon_e5();

/// Looks a node up by name ("A9", "K10", "A15", "XeonE5");
/// throws hcep::PreconditionError for unknown names.
[[nodiscard]] NodeSpec by_name(const std::string& name);

/// Names available through by_name().
[[nodiscard]] std::vector<std::string> catalog_names();

/// Power drawn by one Ethernet switch that aggregates wimpy nodes. The
/// paper folds a 20 W switch into the A9 side of the power-substitution
/// ratio (footnote 3).
[[nodiscard]] Watts a9_switch_power();

/// A9 nodes served per switch: 20 W / 8 nodes = 2.5 W amortized per A9,
/// which yields the paper's 60 / (5 + 2.5) = 8:1 substitution ratio.
[[nodiscard]] unsigned a9_nodes_per_switch();

/// Total switch power for `n_a9` wimpy nodes (ceil(n/8) switches).
[[nodiscard]] Watts switch_power_for(unsigned n_a9);

}  // namespace hcep::hw
