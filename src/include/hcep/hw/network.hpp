// Inter-site wide-area network model.
//
// The federation tier (hcep::fed) places requests across geographically
// separate clusters; what separates the sites physically is the WAN
// between them. This model keeps the paper's level of abstraction: a
// link is a propagation latency plus a sustainable bandwidth, and the
// transit time of one request is latency + payload / bandwidth — no
// queueing on the wide-area path (the bottleneck this repo studies is
// the cluster, not the backbone).
#pragma once

#include <cstddef>
#include <vector>

#include "hcep/util/json.hpp"
#include "hcep/util/units.hpp"

namespace hcep::hw {

/// One directed inter-site link. A zero bandwidth means "unconstrained"
/// (the payload term is dropped), matching how the node models treat
/// absent components.
struct LinkSpec {
  Seconds latency{};
  BytesPerSecond bandwidth{};
};

/// Dense pairwise latency/bandwidth matrix over `size()` sites. The
/// diagonal is implicitly free: transit within a site is exactly zero,
/// so a single-site federation reproduces plain cluster results.
class InterSiteNetwork {
 public:
  InterSiteNetwork() = default;
  /// `sites` disconnected sites (all off-diagonal links zero-latency,
  /// unconstrained bandwidth) — set_link fills in real distances.
  explicit InterSiteNetwork(std::size_t sites);

  /// Fully-connected symmetric topology with one common link shape —
  /// the "three regions on one backbone" configuration the federation
  /// tests use.
  [[nodiscard]] static InterSiteNetwork uniform(std::size_t sites,
                                                Seconds latency,
                                                BytesPerSecond bandwidth);

  /// Installs `link` in both directions (i -> j and j -> i).
  void set_link(std::size_t i, std::size_t j, const LinkSpec& link);
  /// Installs `link` in the i -> j direction only (asymmetric routes).
  void set_directed_link(std::size_t i, std::size_t j, const LinkSpec& link);

  [[nodiscard]] const LinkSpec& link(std::size_t i, std::size_t j) const;
  [[nodiscard]] std::size_t size() const { return sites_; }

  /// One-way transit of a `payload`-byte request from site i to site j:
  /// zero on the diagonal, latency + payload / bandwidth otherwise
  /// (the bandwidth term is dropped for unconstrained links).
  [[nodiscard]] Seconds transit(std::size_t i, std::size_t j,
                                Bytes payload) const;

  /// Deterministic JSON (row-major link matrix, insertion-ordered keys).
  [[nodiscard]] JsonValue to_json() const;

 private:
  std::size_t sites_ = 0;
  std::vector<LinkSpec> links_;  ///< row-major [from * sites_ + to]
};

}  // namespace hcep::hw
