// Hardware node models.
//
// The paper evaluates on two physical leaf-node types (Table 5): a wimpy
// ARM Cortex-A9 board and a brawny AMD Opteron K10 server. We have no such
// hardware, so a NodeSpec carries everything the paper measures on a real
// node: the architectural parameters from Table 5, a per-component power
// model (P_CPU,act / P_CPU,stall / P_mem / P_net / P_sys,idle from Table 1),
// and a micro-architectural cost model that converts abstract operation
// counts emitted by the workload kernels into core cycles and memory-stall
// cycles — the same quantities the authors obtain from `perf` counters.
#pragma once

#include <string>
#include <vector>

#include "hcep/util/units.hpp"

namespace hcep::hw {

enum class Isa {
  kArmV7A,   ///< ARM Cortex-A9 / A15 class
  kArmV8A,   ///< extension nodes
  kX86_64,   ///< AMD Opteron / Intel Xeon class
};

[[nodiscard]] std::string to_string(Isa isa);

/// Discrete DVFS operating points, sorted ascending. The paper's footnote 4
/// counts 5 points for the A9 and 3 for the K10.
class DvfsLadder {
 public:
  DvfsLadder() = default;
  explicit DvfsLadder(std::vector<Hertz> steps);

  [[nodiscard]] std::size_t size() const { return steps_.size(); }
  [[nodiscard]] Hertz min() const;
  [[nodiscard]] Hertz max() const;
  [[nodiscard]] Hertz step(std::size_t i) const;
  [[nodiscard]] const std::vector<Hertz>& steps() const { return steps_; }
  /// Nearest ladder point at or above `f` (clamps to max).
  [[nodiscard]] Hertz quantize_up(Hertz f) const;

 private:
  std::vector<Hertz> steps_;
};

/// Cache hierarchy (informational + used by the kernels' working-set
/// classification when deciding what traffic spills to memory).
struct CacheSpec {
  Bytes l1d_per_core{};
  Bytes l2{};
  bool l2_per_core = false;
  Bytes l3{};  ///< zero when absent (A9 has no L3)
};

/// Per-component power at the reference operating point (all cores active
/// at f_max). Dynamic components scale with active cores and frequency; the
/// idle floor does not (it models the non-gateable platform power the
/// energy-proportionality literature blames for the proportionality wall).
struct PowerComponents {
  Watts idle{};            ///< P_sys,idle — whole node, no work
  Watts core_active{};     ///< P_CPU,act contribution of ONE core at f_max
  Watts core_stalled{};    ///< P_CPU,stall contribution of ONE core at f_max
  Watts mem_active{};      ///< P_mem — memory subsystem streaming
  Watts net_active{};      ///< P_net — NIC moving data
  double dvfs_exponent = 2.3;  ///< dynamic power ~ (f/f_max)^exponent

  /// Dynamic scale factor for `active_cores` cores at frequency f.
  [[nodiscard]] double dvfs_scale(Hertz f, Hertz f_max) const;
};

/// Maps abstract operation counts to cycles (the stand-in for the authors'
/// perf-counter characterization).
struct CostModel {
  double cpi_int = 1.0;       ///< cycles per integer op
  double cpi_fp = 1.0;        ///< cycles per floating-point op
  double cpi_branch = 1.0;    ///< cycles per branch
  double cpi_crypto = 20.0;   ///< cycles per crypto primitive op
  double crypto_speedup = 1.0;  ///< ISA acceleration divisor (K10 > 1)
  BytesPerSecond mem_bandwidth{};  ///< sustainable stream bandwidth
  /// Fraction of per-core memory time recovered when adding cores on the
  /// single shared controller (0 = fully serialized, 1 = perfect scaling).
  double mem_core_scalability = 0.25;

  /// Effective memory parallelism for c active cores.
  [[nodiscard]] double mem_parallelism(unsigned active_cores) const;
};

/// One leaf-node type (a Table 5 column).
struct NodeSpec {
  std::string name;   ///< "A9", "K10", ...
  Isa isa = Isa::kArmV7A;
  unsigned cores = 1;
  DvfsLadder dvfs;
  CacheSpec caches;
  Bytes memory{};
  BytesPerSecond nic_bandwidth{};

  PowerComponents power;
  CostModel cost;

  /// Nameplate peak power used for rack power budgeting (the paper budgets
  /// with 5 W / 60 W, not with per-workload model peaks).
  Watts nameplate_peak{};

  /// Whole-node dynamic+idle power in a given activity state.
  /// `cores_active`/`cores_stalled` of the node's cores are computing /
  /// stalled on memory; mem/net flags gate those components.
  [[nodiscard]] Watts node_power(unsigned cores_active, unsigned cores_stalled,
                                 bool mem_busy, bool net_busy, Hertz f) const;

  /// P_idle shortcut.
  [[nodiscard]] Watts idle_power() const { return power.idle; }

  /// Validates internal consistency; throws hcep::PreconditionError.
  void validate() const;
};

}  // namespace hcep::hw
