// Heterogeneous configuration-space enumeration.
//
// A configuration picks, for each node type that is present, a tuple
// (node count, active cores, core frequency). The paper's footnote 4
// counts the space for 10 ARM + 10 AMD nodes:
//   both present: 10*5*4 * 10*3*6 = 36,000
//   ARM only:     10*5*4         =    200
//   AMD only:     10*3*6         =    180   -> total 36,380.
// ConfigSpace reproduces exactly this combinatorics for any set of types
// and supports O(1) random access by index so sweeps parallelize.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hcep/hw/node.hpp"
#include "hcep/model/cluster_spec.hpp"

namespace hcep::config {

/// One explicit (active cores, frequency) operating point.
struct OperatingPoint {
  unsigned cores = 0;
  Hertz frequency{};
};

/// Enumeration options for one node type.
struct TypeOptions {
  hw::NodeSpec spec;
  unsigned max_nodes = 1;  ///< node count ranges over 1..max_nodes
  /// Active-core choices; empty selects 1..spec.cores.
  std::vector<unsigned> core_counts;
  /// Frequency choices; empty selects the full DVFS ladder.
  std::vector<Hertz> frequencies;
  /// When non-empty, overrides the (core_counts x frequencies) cross
  /// product with an explicit operating-point list — the representation
  /// the pruner produces (prune.hpp), since a non-dominated set is not a
  /// cross product.
  std::vector<OperatingPoint> operating_points;

  /// Number of (n, c, f) tuples when this type is present.
  [[nodiscard]] std::uint64_t tuples() const;
};

/// Upper bound on node types per space, sized so decoded-group scratch
/// buffers can live on the stack along every sweep path.
inline constexpr std::size_t kMaxTypes = 16;

/// One present group of a decoded configuration, by reference into the
/// space: `type` indexes types(), `point` indexes the type's operating
/// points (resolve with ConfigSpace::point_at), `count` is n_i. Decoding
/// to this form costs a few integer divisions — no NodeSpec/string copies
/// — which is what lets sweeps run allocation-free.
struct DecodedGroup {
  std::uint32_t type = 0;
  std::uint32_t count = 0;
  std::uint32_t point = 0;
};

class ConfigSpace {
 public:
  explicit ConfigSpace(std::vector<TypeOptions> types);

  [[nodiscard]] const std::vector<TypeOptions>& types() const {
    return types_;
  }

  /// Total number of configurations (at least one node present).
  [[nodiscard]] std::uint64_t size() const { return size_; }

  /// Decodes configuration `index` in [0, size()).
  [[nodiscard]] model::ClusterSpec config_at(std::uint64_t index) const;

  /// Decodes configuration `index` into caller storage (`out` must hold at
  /// least types().size() entries); returns the number of present groups.
  /// Groups appear in type order, matching config_at's group order.
  [[nodiscard]] std::size_t decode_at(std::uint64_t index,
                                      DecodedGroup* out) const;

  /// Number of (cores, frequency) operating points of one type — the
  /// per-type tuple count with the node-count axis divided out.
  [[nodiscard]] std::size_t points_for(std::size_t type) const;

  /// Resolves a DecodedGroup::point ordinal to explicit (cores, frequency).
  [[nodiscard]] OperatingPoint point_at(std::size_t type,
                                        std::size_t point) const;

  /// Invokes fn(config, index) over the whole space (sequential).
  void for_each(
      const std::function<void(const model::ClusterSpec&, std::uint64_t)>& fn)
      const;

  /// Invokes fn(groups, n_groups, index) over the whole space using an
  /// incremental mixed-radix odometer: no ClusterSpec materialization and
  /// no allocation per configuration.
  void for_each_decoded(
      const std::function<void(const DecodedGroup*, std::size_t,
                               std::uint64_t)>& fn) const;

 private:
  std::vector<TypeOptions> types_;
  std::vector<std::uint64_t> radix_;  ///< tuples()+1 per type (0 = absent)
  std::uint64_t size_ = 0;
};

/// The paper's footnote-4 space: `arm` A9 nodes x 5 frequencies x 4 cores
/// and `amd` K10 nodes x 3 frequencies x 6 cores.
[[nodiscard]] ConfigSpace make_a9_k10_space(unsigned arm, unsigned amd);

}  // namespace hcep::config
