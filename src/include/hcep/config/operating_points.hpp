// Memoized operating-point evaluation engine.
//
// A configuration space over T node types with P_t per-type operating
// points (active cores x frequency) contains O(prod_t n_t * P_t)
// configurations but only O(sum_t P_t) *distinct* per-node behaviours:
// for the footnote-4 A9/K10 space that is 36,380 configurations built
// from 20 + 18 = 38 tuples. Everything the time-energy model derives per
// node — unit-time phase components, unit throughput, busy power and the
// Table 2 energy rates — depends only on (type, cores, frequency), never
// on the node count, so it can be computed once per tuple and reused
// across the whole sweep.
//
// OperatingPointTable precomputes exactly those quantities (via the same
// workload::unit_time / workload::busy_power primitives the naive
// TimeEnergyModel path uses, so results agree to machine precision) and
// fuses a configuration in O(#types) arithmetic with no ClusterSpec,
// NodeSpec, Workload or heap allocation on the hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "hcep/config/space.hpp"
#include "hcep/util/units.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::config {

/// Cached per-(type, operating point) quantities. Times are seconds per
/// unit of work on one node; powers are watts per node. The typed fields
/// have raw-double layout (sizeof(Quantity) == sizeof(double)), so the
/// table stays a flat array of 10 doubles per tuple.
struct OperatingPointEntry {
  Seconds t_core{};  ///< per-unit core execution time
  Seconds t_mem{};   ///< per-unit memory-stall time
  Seconds t_cpu{};   ///< max(t_core, t_mem)
  Seconds t_io{};    ///< per-unit NIC transfer time
  double throughput = 0.0;  ///< units/s per continuously busy node
  Watts busy_power{};       ///< per continuously busy node
  // Table 2 energy rates with (cores * dvfs * kappa) folded in, so the
  // fused evaluator multiplies each by a phase time and the node count.
  Watts p_core_active{};  ///< while cores execute work cycles
  Watts p_core_stall{};   ///< while cores stall on memory
  Watts p_mem{};          ///< while the memory system streams
  Watts p_net{};          ///< while the NIC moves data
};

/// The four quantities a sweep needs per configuration.
struct PointMetrics {
  Seconds time{};      ///< job execution time T_P
  Joules energy{};     ///< job energy E_P
  Watts idle_power{};  ///< cluster idle floor
  Watts busy_power{};  ///< cluster busy power
};

class OperatingPointTable {
 public:
  /// Precomputes every (type, operating point) tuple of `space` for
  /// `workload`. Throws when the workload lacks demand for a type.
  /// Holds no reference to either argument after construction.
  OperatingPointTable(const ConfigSpace& space,
                      const workload::Workload& workload);

  [[nodiscard]] std::size_t num_types() const { return types_.size(); }
  [[nodiscard]] std::size_t points_for(std::size_t type) const {
    return types_[type].points.size();
  }
  [[nodiscard]] const OperatingPointEntry& entry(std::size_t type,
                                                 std::size_t point) const {
    return types_[type].points[point];
  }
  /// Idle floor of one node of `type`.
  [[nodiscard]] Watts idle_power(std::size_t type) const {
    return types_[type].idle_power;
  }
  [[nodiscard]] double units_per_job() const { return units_per_job_; }

  /// Fuses one configuration: rate-matched work split, Table 2 time and
  /// energy rows, idle/busy cluster power — pure arithmetic over the
  /// cached tuples, no allocation. `groups` holds `n` present groups
  /// (e.g. from ConfigSpace::decode_at).
  [[nodiscard]] PointMetrics evaluate(const DecodedGroup* groups,
                                      std::size_t n, double units) const;

  /// Convenience overload for one job of the bound workload.
  [[nodiscard]] PointMetrics evaluate_job(const DecodedGroup* groups,
                                          std::size_t n) const {
    return evaluate(groups, n, units_per_job_);
  }

 private:
  struct TypeTable {
    Watts idle_power{};  ///< per node, operating-point independent
    std::vector<OperatingPointEntry> points;
  };
  std::vector<TypeTable> types_;
  double units_per_job_ = 1.0;
  Seconds io_request_interval_{};  ///< 1/lambda_I/O
};

}  // namespace hcep::config
