// Configuration-space pruning (the paper's stated future work: "An
// approach to reduce the configuration space is beyond the scope of this
// paper", footnote 4 discussion).
//
// Per node type, an operating point (c1, f1) is *dominated* by (c2, f2)
// when the latter delivers at least the throughput at no more busy power
// for the given workload. Under the model's rate-matched split (every
// group busy for the whole of T_P, docs/MODEL.md §3), swapping a dominated
// point for its dominator never increases T_P or E_P, so pruning
// dominated points preserves the energy-deadline Pareto frontier exactly
// — asserted empirically in tests — while shrinking the space by the
// product of the per-type reductions.
#pragma once

#include "hcep/config/space.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::config {

struct PruneStats {
  std::uint64_t configurations_before = 0;
  std::uint64_t configurations_after = 0;
  /// Per type: operating points kept / total.
  std::vector<std::pair<std::size_t, std::size_t>> per_type;

  [[nodiscard]] double reduction_factor() const {
    return configurations_after > 0
               ? static_cast<double>(configurations_before) /
                     static_cast<double>(configurations_after)
               : 0.0;
  }
};

/// Returns a space over the same types with per-type dominated operating
/// points removed (w.r.t. `workload`'s demands). Requires the workload to
/// cover every type in the space.
[[nodiscard]] ConfigSpace prune_operating_points(
    const ConfigSpace& space, const workload::Workload& workload,
    PruneStats* stats = nullptr);

}  // namespace hcep::config
