// Structure-of-arrays sweep results.
//
// A full footnote-4 sweep produces 36,380 results. Carrying a deep
// ClusterSpec (strings, DVFS ladders, CPI tables) per result makes the
// frontier extraction sort/swap kilobyte-sized structs; an EvaluationSet
// stores the four metric columns contiguously and materializes the heavy
// per-configuration Evaluation lazily — only for the handful of
// configurations a caller actually selects (frontier members, deadline
// picks, EDP optima).
#pragma once

#include <cstdint>
#include <vector>

#include "hcep/config/space.hpp"
#include "hcep/model/cluster_spec.hpp"
#include "hcep/util/units.hpp"

namespace hcep::config {

/// One evaluated configuration, fully materialized.
struct Evaluation {
  std::uint64_t index = 0;      ///< position in the ConfigSpace
  model::ClusterSpec config;
  Seconds time{};               ///< job execution time T_P
  Joules energy{};              ///< job energy E_P
  Watts idle_power{};
  Watts busy_power{};
};

/// Sweep results for every configuration of a ConfigSpace, stored as
/// parallel metric columns indexed by configuration index. Borrows the
/// space (for lazy materialization): the space must outlive the set.
class EvaluationSet {
 public:
  EvaluationSet() = default;
  EvaluationSet(const ConfigSpace* space, std::size_t n)
      : space_(space), time_(n), energy_(n), idle_(n), busy_(n) {}

  [[nodiscard]] std::size_t size() const { return time_.size(); }
  [[nodiscard]] bool empty() const { return time_.empty(); }
  [[nodiscard]] const ConfigSpace* space() const { return space_; }

  [[nodiscard]] Seconds time(std::size_t i) const {
    return Seconds{time_[i]};
  }
  [[nodiscard]] Joules energy(std::size_t i) const {
    return Joules{energy_[i]};
  }
  [[nodiscard]] Watts idle_power(std::size_t i) const {
    return Watts{idle_[i]};
  }
  [[nodiscard]] Watts busy_power(std::size_t i) const {
    return Watts{busy_[i]};
  }

  /// Raw columns (seconds / joules / watts), index-aligned.
  [[nodiscard]] const std::vector<double>& times() const { return time_; }
  [[nodiscard]] const std::vector<double>& energies() const {
    return energy_;
  }
  [[nodiscard]] const std::vector<double>& idle_powers() const {
    return idle_;
  }
  [[nodiscard]] const std::vector<double>& busy_powers() const {
    return busy_;
  }

  /// Writes one row (thread-safe for distinct `i`).
  void set(std::size_t i, Seconds time, Joules energy, Watts idle_power,
           Watts busy_power) {
    time_[i] = time.value();
    energy_[i] = energy.value();
    idle_[i] = idle_power.value();
    busy_[i] = busy_power.value();
  }

  /// Decodes the ClusterSpec for row `i` and assembles the classic
  /// Evaluation — the only place the sweep pipeline pays for deep copies.
  [[nodiscard]] Evaluation materialize(std::size_t i) const;

 private:
  const ConfigSpace* space_ = nullptr;
  std::vector<double> time_;    ///< T_P [s]
  std::vector<double> energy_;  ///< E_P [J]
  std::vector<double> idle_;    ///< cluster idle floor [W]
  std::vector<double> busy_;    ///< cluster busy power [W]
};

}  // namespace hcep::config
