// Power-budget accounting and the paper's 1 kW cluster mixes.
//
// Footnote 3: one K10 draws 60 W nameplate, one A9 5 W; an Ethernet switch
// serving 8 A9 nodes draws 20 W, so an A9 costs 7.5 W amortized and the
// substitution ratio is 60 / 7.5 = 8 A9 per K10. Under a 1 kW budget the
// cluster mixes step by 4 K10 <-> 32 A9: 128:0, 96:4, 64:8, 32:12, 0:16.
#pragma once

#include <vector>

#include "hcep/hw/node.hpp"
#include "hcep/model/cluster_spec.hpp"

namespace hcep::config {

/// Nameplate rack power of an (n_a9, n_k10) mix including switches.
[[nodiscard]] Watts mix_nameplate_power(unsigned n_a9, unsigned n_k10);

/// The paper's A9-per-K10 substitution ratio (8).
[[nodiscard]] unsigned substitution_ratio();

/// All maximal (n_a9, n_k10) mixes within `budget`, stepping `k10_step`
/// K10 nodes at a time from the all-K10 end (each step trades k10_step
/// K10 for k10_step * ratio A9). Clusters come with full cores/frequency
/// and switch overhead recorded.
[[nodiscard]] std::vector<model::ClusterSpec> budget_mixes(
    Watts budget, unsigned k10_step = 4);

/// The exact five mixes of Figures 7/8 and Table 8 (1 kW budget):
/// 128A9:0K10, 96A9:4K10, 64A9:8K10, 32A9:12K10, 0A9:16K10.
[[nodiscard]] std::vector<model::ClusterSpec> paper_budget_mixes();

/// Substitution ratio for an arbitrary (wimpy, brawny) pair, derived the
/// way footnote 3 derives 8:1 for A9/K10: brawny nameplate over the
/// wimpy nameplate plus its amortized switch share.
[[nodiscard]] unsigned substitution_ratio_for(const hw::NodeSpec& wimpy,
                                              const hw::NodeSpec& brawny);

/// Generalized budget mixes for an arbitrary node pair: maximal mixes
/// within `budget`, trading `brawny_step` brawny nodes for
/// brawny_step * ratio wimpy nodes per step.
[[nodiscard]] std::vector<model::ClusterSpec> budget_mixes_for(
    const hw::NodeSpec& wimpy, const hw::NodeSpec& brawny, Watts budget,
    unsigned brawny_step = 1);

}  // namespace hcep::config
