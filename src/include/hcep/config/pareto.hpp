// Energy-deadline Pareto exploration (Section III-D).
//
// The paper's prior work [31] showed heterogeneity creates a "sweet
// region": the set of configurations Pareto-optimal in (execution time,
// energy) for a given program. This module evaluates the time-energy
// model across a ConfigSpace (in parallel) and extracts that frontier,
// plus the deadline-constrained minimum-energy pick used by the
// response-time analysis of Figures 11/12.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hcep/config/space.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/parallel/thread_pool.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::config {

/// One evaluated configuration.
struct Evaluation {
  std::uint64_t index = 0;      ///< position in the ConfigSpace
  model::ClusterSpec config;
  Seconds time{};               ///< job execution time T_P
  Joules energy{};              ///< job energy E_P
  Watts idle_power{};
  Watts busy_power{};
};

/// Evaluates every configuration in `space` for one job of `workload`.
/// Runs on `pool` (nullptr = the global pool). Configurations whose node
/// types the workload lacks demand for are skipped.
[[nodiscard]] std::vector<Evaluation> evaluate_space(
    const ConfigSpace& space, const workload::Workload& workload,
    ThreadPool* pool = nullptr);

/// Extracts the Pareto frontier minimizing (time, energy): no returned
/// configuration is dominated (another with <= time and <= energy, one
/// strict). Result sorted by increasing time (hence decreasing energy).
[[nodiscard]] std::vector<Evaluation> pareto_front(
    std::vector<Evaluation> evaluations);

/// Minimum-energy configuration meeting `deadline`; nullopt when no
/// configuration is fast enough.
[[nodiscard]] std::optional<Evaluation> min_energy_within_deadline(
    const std::vector<Evaluation>& evaluations, Seconds deadline);

/// Fastest configuration regardless of energy.
[[nodiscard]] std::optional<Evaluation> fastest(
    const std::vector<Evaluation>& evaluations);

/// Energy-delay product E_P * T_P in J*s — the classic single-number
/// compromise between the frontier's two axes.
[[nodiscard]] double energy_delay_product(const Evaluation& e);

/// Energy-delay-squared product E_P * T_P^2 (weights latency harder).
[[nodiscard]] double energy_delay2_product(const Evaluation& e);

/// Configuration minimizing EDP (or ED2P when `squared`); always a member
/// of the Pareto frontier.
[[nodiscard]] std::optional<Evaluation> min_edp(
    const std::vector<Evaluation>& evaluations, bool squared = false);

}  // namespace hcep::config
