// Energy-deadline Pareto exploration (Section III-D).
//
// The paper's prior work [31] showed heterogeneity creates a "sweet
// region": the set of configurations Pareto-optimal in (execution time,
// energy) for a given program. This module evaluates the time-energy
// model across a ConfigSpace (in parallel) and extracts that frontier,
// plus the deadline-constrained minimum-energy pick used by the
// response-time analysis of Figures 11/12.
//
// The sweep is memoized: evaluate_space precomputes an
// OperatingPointTable (one entry per distinct (type, cores, frequency)
// tuple — 38 for the 36,380-configuration footnote-4 space) and fuses
// each configuration in O(#types) arithmetic, writing into a
// structure-of-arrays EvaluationSet. Selection helpers operate on the
// metric columns and materialize full Evaluations only for winners.
// evaluate_space_naive keeps the original one-TimeEnergyModel-per-
// configuration path as the cross-check oracle.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hcep/config/evaluation_set.hpp"
#include "hcep/config/operating_points.hpp"
#include "hcep/config/space.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/parallel/thread_pool.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::config {

/// Evaluates every configuration in `space` for one job of `workload`
/// via the memoized fast path. Runs on `pool` (nullptr = the global
/// pool). The returned set borrows `space`, which must outlive it.
[[nodiscard]] EvaluationSet evaluate_space(const ConfigSpace& space,
                                           const workload::Workload& workload,
                                           ThreadPool* pool = nullptr);

/// The pre-memoization reference path: materializes a ClusterSpec and a
/// TimeEnergyModel per configuration. O(|space|) heavyweight work — kept
/// as the oracle for fast-path equivalence tests and for callers that
/// want every Evaluation fully materialized anyway.
[[nodiscard]] std::vector<Evaluation> evaluate_space_naive(
    const ConfigSpace& space, const workload::Workload& workload,
    ThreadPool* pool = nullptr);

/// Extracts the Pareto frontier minimizing (time, energy): no returned
/// configuration is dominated (another with <= time and <= energy, one
/// strict). Result sorted by increasing time (hence decreasing energy).
/// The EvaluationSet overload sorts 8-byte indices over the metric
/// columns and materializes only the frontier members.
[[nodiscard]] std::vector<Evaluation> pareto_front(
    std::vector<Evaluation> evaluations);
[[nodiscard]] std::vector<Evaluation> pareto_front(const EvaluationSet& evals);

/// Minimum-energy configuration meeting `deadline`; nullopt when no
/// configuration is fast enough.
[[nodiscard]] std::optional<Evaluation> min_energy_within_deadline(
    const std::vector<Evaluation>& evaluations, Seconds deadline);
[[nodiscard]] std::optional<Evaluation> min_energy_within_deadline(
    const EvaluationSet& evals, Seconds deadline);

/// Fastest configuration regardless of energy.
[[nodiscard]] std::optional<Evaluation> fastest(
    const std::vector<Evaluation>& evaluations);
[[nodiscard]] std::optional<Evaluation> fastest(const EvaluationSet& evals);

/// Energy-delay product E_P * T_P — the classic single-number compromise
/// between the frontier's two axes, dimensionally J*s.
[[nodiscard]] JouleSeconds energy_delay_product(const Evaluation& e);

/// Energy-delay-squared product E_P * T_P^2 (weights latency harder).
[[nodiscard]] JouleSecondsSquared energy_delay2_product(const Evaluation& e);

/// Configuration minimizing EDP (or ED2P when `squared`); always a member
/// of the Pareto frontier.
[[nodiscard]] std::optional<Evaluation> min_edp(
    const std::vector<Evaluation>& evaluations, bool squared = false);
[[nodiscard]] std::optional<Evaluation> min_edp(const EvaluationSet& evals,
                                                bool squared = false);

}  // namespace hcep::config
