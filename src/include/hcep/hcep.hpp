// hcep — heterogeneous-cluster energy proportionality.
//
// Umbrella header for the public API. Reproduces "On Energy
// Proportionality and Time-Energy Performance of Heterogeneous Clusters"
// (IEEE CLUSTER 2016):
//
//   hcep::hw        node models (Cortex-A9, Opteron K10, extensions)
//   hcep::kernels   instrumented workload kernels (EP, memcached, x264,
//                   blackscholes, Julius, RSA-2048)
//   hcep::workload  characterization + calibration -> service demands
//   hcep::model     the Table 2 time-energy model over cluster configs
//   hcep::power     power curves + Yokogawa-style meter emulation
//   hcep::metrics   DPR / IPR / EPM / LDR / PG / PPR (Table 3)
//   hcep::queueing  M/D/1 analytics (utilization, 95th percentiles)
//   hcep::des       discrete-event kernel
//   hcep::cluster   simulated testbed (dispatcher + nodes + meter)
//   hcep::traffic   request-level load generation, SLO + admission
//   hcep::obs       tracing/metrics plus the telemetry analysis layer
//   hcep::config    configuration space, power budgets, Pareto frontier
//   hcep::analysis  per-table/figure studies
//   hcep::core      PaperStudy one-stop facade
#pragma once

#include "hcep/analysis/cluster_study.hpp"
#include "hcep/analysis/export.hpp"
#include "hcep/analysis/governor.hpp"
#include "hcep/analysis/knightshift.hpp"
#include "hcep/analysis/pareto_study.hpp"
#include "hcep/analysis/power_cap.hpp"
#include "hcep/analysis/report.hpp"
#include "hcep/analysis/response_study.hpp"
#include "hcep/analysis/sensitivity.hpp"
#include "hcep/analysis/single_node.hpp"
#include "hcep/analysis/validation.hpp"
#include "hcep/cluster/autoscale.hpp"
#include "hcep/cluster/campaign.hpp"
#include "hcep/cluster/dispatch.hpp"
#include "hcep/cluster/failures.hpp"
#include "hcep/cluster/phase_trace.hpp"
#include "hcep/cluster/replication.hpp"
#include "hcep/cluster/scaleout_sim.hpp"
#include "hcep/cluster/trace.hpp"
#include "hcep/cluster/simulator.hpp"
#include "hcep/config/budget.hpp"
#include "hcep/config/evaluation_set.hpp"
#include "hcep/config/operating_points.hpp"
#include "hcep/config/pareto.hpp"
#include "hcep/config/prune.hpp"
#include "hcep/config/space.hpp"
#include "hcep/control/controller.hpp"
#include "hcep/control/controllers.hpp"
#include "hcep/core/paper_study.hpp"
#include "hcep/des/simulator.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/hw/node.hpp"
#include "hcep/kernels/registry.hpp"
#include "hcep/metrics/proportionality.hpp"
#include "hcep/model/cluster_spec.hpp"
#include "hcep/model/time_energy.hpp"
#include "hcep/obs/obs.hpp"
#include "hcep/obs/power_probe.hpp"
#include "hcep/obs/profile.hpp"
#include "hcep/obs/run_report.hpp"
#include "hcep/power/curve.hpp"
#include "hcep/power/meter.hpp"
#include "hcep/queueing/md1.hpp"
#include "hcep/queueing/mdc.hpp"
#include "hcep/queueing/mg1.hpp"
#include "hcep/traffic/admission.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/traffic/slo.hpp"
#include "hcep/util/json.hpp"
#include "hcep/util/table.hpp"
#include "hcep/util/units.hpp"
#include "hcep/workload/calibrate.hpp"
#include "hcep/workload/catalog.hpp"
#include "hcep/workload/characterize.hpp"
#include "hcep/workload/node_ops.hpp"
