// Admission control and retry policy for the request-level simulator.
//
// Two complementary shedding mechanisms guard the dispatcher:
//   * a token bucket bounds the sustained admitted rate (with a burst
//     allowance), rejecting before any queue state is touched;
//   * queue-depth shedding rejects when the chosen node's queue already
//     holds `max_queue_depth` requests — the classic load-shedding
//     backstop that keeps tail latency bounded once the cluster
//     saturates.
// Rejected requests optionally re-enter after exponential backoff
// (bounded attempts), modelling client-side retry storms faithfully
// enough to measure their SLO cost.
#pragma once

#include <cstdint>

#include "hcep/util/units.hpp"

namespace hcep::traffic {

/// Deterministic token bucket over simulated time: `rate_per_s` tokens
/// accrue per second up to `burst`; the bucket starts full.
class TokenBucket {
 public:
  TokenBucket(double rate_per_s, double burst);

  /// Consumes `cost` tokens at simulated time `now` when available;
  /// returns false (and consumes nothing) otherwise. `now` must not move
  /// backwards between calls.
  [[nodiscard]] bool try_acquire(Seconds now, double cost = 1.0);

  /// Token level after refilling to `now` (observability only).
  [[nodiscard]] double level(Seconds now) const;

  [[nodiscard]] double rate_per_s() const { return rate_; }
  [[nodiscard]] double burst() const { return burst_; }

 private:
  void refill(Seconds now);

  double rate_;
  double burst_;
  double tokens_;
  Seconds last_{};
};

/// Admission configuration; default-constructed means "admit everything".
struct AdmissionOptions {
  /// Sustained admitted requests/s; <= 0 disables the token bucket.
  double bucket_rate_per_s = 0.0;
  /// Token-bucket burst capacity (requests); used only with the bucket.
  double bucket_burst = 1.0;
  /// Shed when the dispatch target already queues this many requests;
  /// 0 disables queue-depth shedding.
  std::uint64_t max_queue_depth = 0;

  [[nodiscard]] bool bucket_enabled() const { return bucket_rate_per_s > 0.0; }
  [[nodiscard]] bool shedding_enabled() const { return max_queue_depth > 0; }
};

/// Bounded retries with exponential backoff: attempt k (1-based) that is
/// rejected retries after base_backoff * multiplier^(k-1) when k <
/// max_attempts, else the request fails permanently.
struct RetryPolicy {
  std::uint32_t max_attempts = 1;  ///< 1 = no retries
  Seconds base_backoff{0.1};
  double multiplier = 2.0;

  /// Backoff delay after rejected attempt `attempt` (1-based).
  [[nodiscard]] Seconds backoff_after(std::uint32_t attempt) const;
};

}  // namespace hcep::traffic
