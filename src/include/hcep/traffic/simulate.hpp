// Open-loop request-level cluster simulation.
//
// Generated arrivals (traffic::ArrivalProcess) flow through admission
// control (traffic::admission) into the heterogeneity-aware dispatcher
// policies of hcep::cluster, executing on the paper's node models over
// the hcep::des kernel. Every request's exact queue-wait, service and
// sojourn times are recorded — p50/p95/p99 are order statistics, not
// estimates — together with full energy accounting (idle floor +
// per-request dynamic energy) and per-class SLO ledgers.
//
// The keystone validation: with one node, one class and Poisson
// arrivals, this simulator IS an M/D/1 queue, and its measured mean wait
// and p95 response must match queueing::MD1's closed forms (Figures
// 11/12 reproduced from traffic rather than formula; see
// tests/test_traffic.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hcep/cluster/dispatch.hpp"
#include "hcep/control/controller.hpp"
#include "hcep/model/cluster_spec.hpp"
#include "hcep/obs/stream.hpp"
#include "hcep/traffic/admission.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/traffic/slo.hpp"
#include "hcep/util/json.hpp"
#include "hcep/util/units.hpp"
#include "hcep/workload/demand.hpp"

namespace hcep::traffic {

/// One request class: a workload (service demand per node type), its
/// share of the arrival stream, and an optional latency SLO.
struct TrafficClass {
  workload::Workload workload;
  double weight = 1.0;
  SloTarget slo{};
};

/// One pre-assigned arrival: absolute time plus the class drawn (or
/// chosen) upstream. Input to the assigned-arrival simulate_traffic
/// overload below, which a routing tier (hcep::fed) uses to replay the
/// exact stream it placed on a cluster.
struct Arrival {
  Seconds t{};
  std::uint32_t cls = 0;
};

/// Terminal outcome of one request, recorded when
/// TrafficOptions::record_requests is on. `index` is the request's
/// arrival index (the position in the assigned-arrival vector, or the
/// global generation index for generated streams), so an upstream
/// router can join records back to its own per-request bookkeeping.
/// `sojourn` spans first arrival to completion (or final rejection).
struct RequestRecord {
  std::uint64_t index = 0;
  std::uint32_t cls = 0;
  std::uint32_t failed = 0;  ///< 1 when the request exhausted attempts
  Seconds sojourn{};
};

struct TrafficOptions {
  /// First-attempt arrivals to generate (retries do not count).
  std::uint64_t requests = 10000;
  cluster::DispatchPolicy policy =
      cluster::DispatchPolicy::kJoinShortestQueue;
  AdmissionOptions admission{};
  RetryPolicy retry{};
  std::uint64_t seed = 1;
  /// Opt-in sharded execution (des::ShardedSimulator): nodes are
  /// partitioned round-robin into `shards` groups, arrivals are assigned
  /// round-robin by arrival index, and the token-bucket rate/burst are
  /// split evenly. 1 = the classic single-loop path (byte-identical to
  /// previous releases for a fixed seed). With shards > 1 the dispatch
  /// policy sees only the shard's nodes, so results differ from the
  /// single-shard run — but are byte-identical across repeated runs (and
  /// across serial/parallel execution) for a fixed (seed, shards) pair.
  std::size_t shards = 1;
  /// Run shards concurrently on the global thread pool (identical
  /// results either way; turn off to debug under a deterministic stack).
  bool parallel_shards = true;
  /// Closed-loop control plane (hcep::control). Default-constructed =
  /// open loop: no controller, no ticks, the classic instruction stream.
  /// With a controller installed, ticks run as ordinary DES events and
  /// the run stays byte-deterministic for a fixed (seed, shards) pair; a
  /// control::make_frozen() controller reproduces the open-loop result
  /// byte-identically (the oracle property tests/test_control.cpp pins).
  control::ControlOptions control{};
  /// Streaming telemetry (hcep::obs::stream). Default-constructed =
  /// off: no collector, no hooks, zero hot-path cost. With a window > 0
  /// the run fills TrafficResult::timeline with tumbling-window
  /// aggregates computed online — purely observational (no RNG draws, no
  /// DES events), so enabling it leaves every other result byte-identical.
  obs::stream::StreamOptions stream{};
  /// Record one RequestRecord per request into TrafficResult::requests
  /// (terminal outcomes, sorted by arrival index). Purely observational:
  /// no RNG draws, no DES events, so every other result stays
  /// byte-identical with it on or off.
  bool record_requests = false;
};

/// Aggregate ledger plus exact latency summaries of one traffic run.
///
/// Timing semantics: `wait` is queue time of admitted attempts (service
/// start minus attempt arrival), `service` is execution time, and
/// `sojourn` is the user-visible latency — completion minus the
/// request's FIRST arrival, so retry backoff delays are included.
/// Without admission control, sojourn == wait + service exactly.
struct TrafficResult {
  std::string arrival_process;
  std::uint64_t shards = 1;  ///< event-loop shards the run executed on
  std::uint64_t offered = 0;      ///< first-attempt arrivals generated
  std::uint64_t admitted = 0;     ///< attempts that passed admission
  std::uint64_t shed_bucket = 0;  ///< attempts rejected by the token bucket
  std::uint64_t shed_queue = 0;   ///< attempts rejected by queue depth
  std::uint64_t retries = 0;      ///< re-attempts scheduled after shedding
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;       ///< requests that exhausted attempts

  Seconds makespan{};
  LatencySummary wait;
  LatencySummary service;
  LatencySummary sojourn;

  Joules energy{};  ///< exact: idle floor over makespan + dynamic energy
  Watts average_power{};
  Joules energy_per_request{};  ///< per completed request

  std::vector<ClassStats> classes;
  std::vector<cluster::NodeLoad> nodes;

  /// Control-plane ledger (enabled == false for open-loop runs).
  /// Deliberately NOT part of to_json(): the core result document stays
  /// controller-agnostic so the frozen-controller oracle can require
  /// byte-identity against the open-loop document. Serialize it
  /// separately via control.to_json().
  control::ControlSummary control;

  /// Streamed tumbling-window timeline (empty unless
  /// TrafficOptions::stream enabled it). Like `control`, deliberately
  /// NOT part of to_json() — the core document stays byte-identical
  /// whether or not streaming was on; serialize it separately via
  /// timeline.to_json() / timeline.csv().
  obs::stream::StreamTimeline timeline;

  /// Per-request terminal outcomes, sorted by arrival index (empty
  /// unless TrafficOptions::record_requests). Like `control` and
  /// `timeline`, deliberately NOT part of to_json().
  std::vector<RequestRecord> requests;

  /// Deterministic JSON (insertion-ordered keys; same-seed runs are
  /// byte-identical).
  [[nodiscard]] JsonValue to_json() const;
};

/// Sustainable aggregate request rate (requests/s) of `cluster` under the
/// weight-averaged class mix — the denominator that turns a target
/// utilization into an arrival rate for the generators above.
[[nodiscard]] double cluster_capacity_per_s(
    const model::ClusterSpec& cluster,
    const std::vector<TrafficClass>& classes);

/// Simulates `options.requests` arrivals drawn from `arrivals` (cloned;
/// the passed process is not mutated) through admission, dispatch and
/// execution. Deterministic for a fixed seed. Instrumented through
/// hcep::obs: request spans carry `wait_s` begin args (so the trace
/// profiler's queue decomposition applies), `traffic.*` counters ledger
/// every admission outcome, and a `traffic_inflight` counter track
/// records the in-system population over time.
[[nodiscard]] TrafficResult simulate_traffic(
    const model::ClusterSpec& cluster,
    const std::vector<TrafficClass>& classes, const ArrivalProcess& arrivals,
    const TrafficOptions& options);

/// Assigned-arrival overload: replays an explicit, time-sorted arrival
/// vector (class chosen upstream) instead of sampling a generator —
/// the entry point a global routing tier uses to hand each cluster
/// exactly the requests it placed there. `options.requests` is ignored
/// (the vector is the budget) and `options.shards` must be 1: the
/// upstream tier owns any parallelism, and a single event loop keeps
/// the replay byte-identical to the equivalent generated run. Arrivals
/// are scheduled lazily (one pending DES event at a time), so the
/// per-event cost matches the generator pump, not an O(n) preload.
[[nodiscard]] TrafficResult simulate_traffic(
    const model::ClusterSpec& cluster,
    const std::vector<TrafficClass>& classes,
    const std::vector<Arrival>& arrivals, const TrafficOptions& options);

}  // namespace hcep::traffic
