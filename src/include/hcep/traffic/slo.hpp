// Service-level-objective accounting for request-level runs.
//
// An SloTarget states the contract ("the 95th percentile of sojourn time
// stays below 200 ms"); LatencySummary condenses exact per-request
// samples into order-statistic percentiles (no streaming estimator —
// the simulator records every request, so p50/p95/p99 are exact); and
// ClassStats carries the full per-class ledger: offered vs admitted vs
// shed vs completed, retries, and per-request SLO violations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hcep/util/json.hpp"
#include "hcep/util/units.hpp"

namespace hcep::traffic {

/// One latency objective: quantile `quantile` of the sojourn time must
/// not exceed `latency`. Default-constructed (latency 0) means "no SLO".
struct SloTarget {
  Seconds latency{};
  double quantile = 0.95;

  [[nodiscard]] bool enabled() const { return latency.value() > 0.0; }
};

/// Order-statistic condensation of a latency sample set.
struct LatencySummary {
  std::uint64_t count = 0;
  Seconds mean{};
  Seconds p50{};
  Seconds p95{};
  Seconds p99{};
  Seconds max{};

  /// Exact percentiles of `samples_s` (seconds); sorts in place.
  [[nodiscard]] static LatencySummary from_samples(
      std::vector<double>& samples_s);

  [[nodiscard]] JsonValue to_json() const;
};

/// Per-class request ledger. Conservation: offered = completed + failed +
/// in-flight-at-horizon; every shed event is either retried or counted
/// into `failed`.
struct ClassStats {
  std::string name;
  std::uint64_t offered = 0;    ///< first-attempt arrivals
  std::uint64_t admitted = 0;   ///< attempts that passed admission
  std::uint64_t shed = 0;       ///< rejected attempts (bucket or queue)
  std::uint64_t retries = 0;    ///< re-attempts scheduled after shedding
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;     ///< permanently rejected requests
  std::uint64_t slo_violations = 0;  ///< completions above the SLO latency

  SloTarget slo{};
  LatencySummary wait;
  LatencySummary service;
  LatencySummary sojourn;
  Joules energy_per_request{};  ///< cluster energy share per completion

  /// Fraction of completions that individually exceeded the SLO latency.
  [[nodiscard]] double violation_fraction() const;
  /// Whether the target quantile of the sojourn distribution met the SLO
  /// (vacuously true when the SLO is disabled or nothing completed).
  [[nodiscard]] bool slo_met() const;

  [[nodiscard]] JsonValue to_json() const;
};

}  // namespace hcep::traffic
