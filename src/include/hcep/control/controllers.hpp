// The three closed-loop policies of ROADMAP item 2, plus the frozen
// no-op controller the oracle tests pin the determinism contract with.
//
//   PowerGateController  sleeps/wakes whole nodes on queue-depth and
//                        utilization signals (DPR/EPM power gating made
//                        online; greedy most-work-per-watt ordering as in
//                        cluster::autoscale_replay)
//   DvfsGovernor         per-node operating-point selection against a
//                        latency-headroom target, planning with the
//                        memoized config::OperatingPointTable entries
//                        exposed through the Actuator
//   PowerCapController   rack power-cap enforcement for the paper's 1 kW
//                        budget: throttles operating points first, parks
//                        idle nodes second, sheds load never
//   FrozenController     observes ticks, actuates nothing — the oracle
//                        for "closed-loop machinery adds zero drift"
#pragma once

#include <memory>

#include "hcep/control/controller.hpp"

namespace hcep::control {

struct PowerGateOptions {
  /// Capacity headroom: keep awake enough nodes for
  /// demand * (1 + headroom).
  double headroom = 0.25;
  /// Never park below this fraction of the fleet (QoS floor, >= 1 node).
  double min_active_fraction = 0.05;
  /// Wake parked nodes when mean queue depth per active node exceeds
  /// this between ticks (congestion override of the rate signal).
  double wake_queue_depth = 4.0;
  /// Only park nodes whose window utilization fell below this.
  double park_utilization = 0.5;
};

/// Sleeps and wakes whole nodes against the windowed arrival rate:
/// nodes are ranked by work-per-watt (service rate over worst-case busy
/// power) and the most efficient prefix covering the capacity target
/// stays awake; the rest park. Queue pressure wakes nodes between
/// rate-driven decisions.
[[nodiscard]] std::unique_ptr<Controller> make_power_gate(
    PowerGateOptions options = {});

struct DvfsGovernorOptions {
  /// Fraction of the tightest class SLO the predicted per-node sojourn
  /// must stay under; lower is more conservative (faster points).
  double latency_headroom = 0.5;
  /// Fallback target when no class carries an SLO.
  Seconds default_target{1.0};
};

/// Per-node DVFS: picks the lowest-power operating point whose predicted
/// sojourn (queue backlog plus one service at that point) meets the
/// latency-headroom target; escalates to the fastest point when even it
/// cannot.
[[nodiscard]] std::unique_ptr<Controller> make_dvfs_governor(
    DvfsGovernorOptions options = {});

struct PowerCapOptions {
  /// Rack budget (the paper's Table 8 racks are provisioned at 1 kW).
  /// Sharded runs enforce cap * shard_share per shard.
  Watts cap{1000.0};
  /// Keep worst-case draw below cap * (1 - guard) when unthrottling, so
  /// restores don't oscillate across the cap.
  double guard = 0.02;
};

/// Enforces worst-case rack draw <= cap: throttles the operating points
/// with the largest power reduction first, parks idle nodes only when
/// every node is already at its slowest point, and restores (wakes, then
/// upgrades cheapest-first) while headroom allows. Because enforcement
/// acts on worst-case busy power, the instantaneous rack draw never
/// exceeds the cap between ticks (tests/test_properties.cpp).
[[nodiscard]] std::unique_ptr<Controller> make_power_cap(
    PowerCapOptions options = {});

/// Ticks like any controller but never actuates: runs under it must be
/// byte-identical to open-loop runs (tests/test_control.cpp).
[[nodiscard]] std::unique_ptr<Controller> make_frozen();

}  // namespace hcep::control
