// Closed-loop control plane: the Controller interface and its contract.
//
// The paper evaluates its energy levers — power gating, DVFS operating
// points, heterogeneous dispatch — as *static* configurations swept
// offline (Table 8). This module turns them into *online* controllers
// that react to the non-stationary arrival processes in hcep::traffic:
// a controller observes the cluster at fixed-interval (plus
// event-triggered) ticks driven by the DES clock inside
// traffic::simulate_traffic and actuates node sleep/wake transitions and
// per-node operating-point changes through an Actuator.
//
// Determinism contract:
//  - Ticks are DES events: a controller sees the exact simulated state at
//    its tick instant and its actions apply before the next event at the
//    same timestamp. Same-seed runs are byte-identical, including across
//    serial vs parallel shard execution for a fixed (seed, shards) pair.
//  - A controller that never actuates (see FrozenController) leaves the
//    run byte-identical to the open-loop simulation: the tick machinery
//    draws no RNG values, schedules no request-visible events and
//    contributes exactly-zero energy adjustments
//    (tests/test_control.cpp asserts this per controller).
//  - Controllers must be deterministic functions of (TickContext,
//    internal state); they are cloned per shard and must not share
//    mutable state across clones.
//
// All power/energy signals crossing this interface are hcep::units
// quantities — never raw doubles — so a W-vs-J slip in a controller is a
// compile error (enforced by hcep-lint's control-unit-double rule).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hcep/obs/stream.hpp"
#include "hcep/power/meter.hpp"
#include "hcep/util/json.hpp"
#include "hcep/util/units.hpp"

namespace hcep::control {

/// Node power-management state.
///
/// kDraining is the intermediate the cap enforcer and autoscaler use to
/// park a busy node: it stops receiving new work immediately, keeps
/// drawing active power while its queue drains, and transitions to
/// kSleeping (at the sleep floor) the moment it empties.
enum class PowerState : std::uint8_t { kActive, kDraining, kSleeping };

[[nodiscard]] const char* to_string(PowerState state);

/// Per-node observation at a tick instant.
struct NodeStatus {
  std::uint32_t type = 0;   ///< ordinal into the run's node-type tables
  std::uint32_t point = 0;  ///< current operating-point index (ascending f)
  PowerState state = PowerState::kActive;
  std::uint64_t queued = 0;    ///< requests queued or in service here
  Seconds backlog{};           ///< pending-work horizon (>= 0)
  double utilization = 0.0;    ///< busy fraction over the last window
  Watts idle_power{};          ///< non-gateable floor while powered
  Watts sleep_power{};         ///< draw while parked
};

/// Per-traffic-class feedback over the window since the previous tick.
struct ClassFeedback {
  Seconds slo_latency{};   ///< zero when the class has no SLO
  Seconds window_p99{};    ///< p99 sojourn this window (zero if none done)
  std::uint64_t window_completed = 0;
  std::uint64_t window_shed = 0;
};

/// Everything a controller may observe at one tick.
struct TickContext {
  Seconds now{};
  Seconds period{};  ///< nominal tick spacing
  /// First-attempt arrivals per second over the window (0 on the first
  /// tick, whose window is empty).
  double window_arrivals_per_s = 0.0;
  const NodeStatus* nodes = nullptr;
  std::size_t num_nodes = 0;
  const ClassFeedback* classes = nullptr;
  std::size_t num_classes = 0;
  /// Conservative rack draw at current states/points: sleeping nodes at
  /// their sleep floor, everything else at worst-case busy power.
  Watts worst_case_power{};
  /// Fraction of the fleet this engine controls (1.0 single-shard). A
  /// power-cap controller enforces cap * shard_share on its shard.
  double shard_share = 1.0;
};

/// Command surface a controller actuates through, plus the memoized
/// operating-point model queries (config::OperatingPointTable entries)
/// it plans with. Commands return false when refused (unknown point,
/// already in the requested state, or the fleet-availability floor).
class Actuator {
 public:
  virtual ~Actuator() = default;

  /// Parks a node: immediately when idle, else via kDraining. Refused
  /// when it would leave no dispatchable node.
  virtual bool sleep_node(std::size_t node) = 0;
  /// Powers a node back up. A sleeping node serves again after the
  /// configured wake delay and charges the wake-energy penalty; a
  /// draining node is simply reactivated (no penalty).
  virtual bool wake_node(std::size_t node) = 0;
  /// Switches the node's operating point for future dispatches
  /// (in-flight service times are fixed at dispatch).
  virtual bool set_operating_point(std::size_t node, std::uint32_t point) = 0;

  [[nodiscard]] virtual std::size_t num_points(std::uint32_t type) const = 0;
  /// Worst-case draw of `node` while serving at `point` (idle floor plus
  /// the largest per-class dynamic power).
  [[nodiscard]] virtual Watts busy_power(std::size_t node,
                                         std::uint32_t point) const = 0;
  /// Class-weighted mean service time per request at `point`.
  [[nodiscard]] virtual Seconds mean_service(std::size_t node,
                                             std::uint32_t point) const = 0;
  /// Class-weighted service rate (requests/s) at `point`.
  [[nodiscard]] virtual double service_rate(std::size_t node,
                                            std::uint32_t point) const = 0;
};

/// A closed-loop policy. tick() is invoked by the simulation at every
/// fixed-interval and event-triggered tick; clone() must produce an
/// independent instance with pristine internal state (one per shard).
class Controller {
 public:
  virtual ~Controller() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void tick(const TickContext& ctx, Actuator& actuator) = 0;
  [[nodiscard]] virtual std::unique_ptr<Controller> clone() const = 0;
};

/// Closed-loop configuration carried by traffic::TrafficOptions. With a
/// null controller the simulation runs open-loop and none of the control
/// machinery is installed.
struct ControlOptions {
  /// Policy to drive (cloned per shard; the passed object is not
  /// mutated). Null disables control entirely.
  std::shared_ptr<const Controller> controller;
  /// Fixed tick interval.
  Seconds period{5.0};
  /// Also tick (at most once per min_event_spacing) when admission sheds
  /// a request — congestion feedback between periodic ticks.
  bool event_triggered = true;
  Seconds min_event_spacing{0.5};
  /// Wake latency: a woken node draws idle power but serves nothing for
  /// this long (autoscale.hpp boot-delay semantics).
  Seconds wake_delay{10.0};
  /// Energy penalty charged per sleeping->active transition.
  Joules wake_energy{10.0};
  /// Draw of a parked node (suspend-to-RAM class).
  Watts sleep_power{0.5};
  /// Record the exact piecewise-constant rack power trace into
  /// ControlSummary::trace (property tests re-integrate it against the
  /// energy ledger; costs two ledger entries per dispatch).
  bool record_power_trace = false;
  /// Append one obs::stream::DecisionRecord per tick to
  /// ControlSummary::flight — the control plane's audit ledger (observed
  /// signals, actions, predicted vs realized effect one window later).
  bool flight_recorder = true;
  /// Drop-oldest bound of the per-shard flight recorder.
  std::size_t flight_capacity = 1u << 16;

  [[nodiscard]] bool enabled() const { return controller != nullptr; }
};

/// Decision ledger of one controlled run (merged across shards). Not
/// part of TrafficResult::to_json() — the core result document stays
/// byte-identical whether or not a controller was installed; serialize
/// this separately via its own to_json().
struct ControlSummary {
  bool enabled = false;
  std::string controller;  ///< Controller::name()
  std::uint64_t ticks = 0;
  std::uint64_t event_ticks = 0;  ///< subset of ticks triggered by sheds
  std::uint64_t sleeps = 0;  ///< park decisions (immediate or draining)
  std::uint64_t wakes = 0;   ///< sleeping->active transitions
  std::uint64_t point_changes = 0;
  /// Idle-minus-sleep energy recovered by gating, clipped to makespan.
  Joules gating_savings{};
  /// Total wake penalties charged (wakes * ControlOptions::wake_energy).
  Joules wake_energy{};
  /// False if any request was ever dispatched to a non-active node
  /// (property-test invariant; always true by construction).
  bool all_dispatches_available = true;
  /// Exact rack power trace when ControlOptions::record_power_trace:
  /// trace.energy(makespan) + wake_energy == TrafficResult::energy to
  /// 1e-9 (tests/test_properties.cpp).
  power::PowerTrace trace;
  /// Per-tick decision audit ledger when ControlOptions::flight_recorder
  /// (merged across shards in deterministic (time, shard, tick) order).
  obs::stream::FlightRecorder flight;

  [[nodiscard]] JsonValue to_json() const;
};

}  // namespace hcep::control
