// A federation site: one cluster plus the regional context around it.
//
// The paper sizes and operates a single heterogeneous cluster; a fleet
// operator runs several of them in different regions, each with its own
// demand profile (time-zone-shifted diurnal load), its own electricity
// tariff and grid carbon intensity, and its own rack power provision.
// Site is the value type that bundles those: everything the global
// router (router.hpp) needs to decide where a request should execute,
// and everything the fleet ledger (fleet.hpp) needs to price the energy
// that execution consumed.
#pragma once

#include <memory>
#include <string>

#include "hcep/control/controller.hpp"
#include "hcep/fed/curves.hpp"
#include "hcep/model/cluster_spec.hpp"
#include "hcep/traffic/arrivals.hpp"
#include "hcep/util/json.hpp"
#include "hcep/util/units.hpp"

namespace hcep::fed {

struct Site {
  std::string name;

  /// The node mix this region runs (the paper's unit of analysis).
  model::ClusterSpec cluster;

  /// Regional demand: the arrival process of requests ORIGINATING here
  /// (before routing). Cloned per run, driven by a per-origin split of
  /// the fleet seed, so the same (seed, sites) always generates the
  /// same streams. A diurnal process with a per-site peak offset is the
  /// canonical choice (traffic::make_diurnal Seconds-offset overload).
  std::shared_ptr<const traffic::ArrivalProcess> arrivals;

  /// Provisioned rack power ceiling (what the region's feed can supply;
  /// the paper budgets racks at nameplate). Informational in the fleet
  /// report and the natural cap for a per-site power-cap controller.
  Watts rack_budget{};

  /// Time-of-use electricity tariff, $/kWh.
  EnergyPriceCurve price;

  /// Grid carbon intensity, gCO2e/kWh.
  CarbonCurve carbon;

  /// Per-site closed-loop control plane (hcep::control), applied to
  /// this site's cluster simulation. Default = open loop.
  control::ControlOptions control{};

  /// Idle floor of the powered cluster: sum of per-node P_sys,idle over
  /// every group. The fleet ledger charges this over the tail between a
  /// site's own makespan and the fleet horizon.
  [[nodiscard]] Watts idle_floor() const;

  /// Deterministic JSON identity card (name, cluster label, node count,
  /// rack budget, tariff curves) — stable site identity for reports;
  /// never an address or iteration-order artifact (hcep-lint's
  /// site-id-determinism rule enforces the complement).
  [[nodiscard]] JsonValue to_json() const;
};

}  // namespace hcep::fed
