// Time-of-use energy price and carbon-intensity curves.
//
// A federation site buys electricity on a tariff and a grid mix that
// both vary over the day; what the global router trades against latency
// is exactly this time dependence. A PiecewiseCurve is a periodic,
// piecewise-linear function of simulated time: knots at fixed instants
// within one period, linear interpolation between them, periodic wrap
// from the last knot back to the first.
//
// Units: the repo's Quantity dimension vector spans time/energy/power/
// frequency/information — it has no currency or mass axis — so curve
// VALUES are documented scalar doubles ($/kWh for price, gCO2e/kWh for
// carbon intensity) while every time input is a typed Seconds and every
// energy being priced is a typed Joules (converted at 3.6e6 J/kWh by
// the fleet ledger).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "hcep/util/json.hpp"
#include "hcep/util/units.hpp"

namespace hcep::fed {

class PiecewiseCurve {
 public:
  /// Flat zero over a 24 h period (a site with no tariff configured
  /// contributes nothing to the fleet cost ledger).
  PiecewiseCurve();

  /// Knots are (time-within-period, value) pairs, strictly increasing
  /// in time, all inside [0, period), values non-negative. The curve
  /// interpolates linearly between consecutive knots and wraps from the
  /// last knot to the first knot one period later.
  PiecewiseCurve(Seconds period,
                 std::vector<std::pair<Seconds, double>> knots);

  /// Constant curve (useful as a control: with a flat price the
  /// cheapest-energy policy degenerates to nearest).
  [[nodiscard]] static PiecewiseCurve flat(double value,
                                           Seconds period = Seconds{86400.0});

  /// Value at simulated time t (periodic: any t >= 0).
  [[nodiscard]] double at(Seconds t) const;

  /// Time-average over one period.
  [[nodiscard]] double mean() const;

  /// Integral of the curve over [a, b] in value * seconds (a <= b).
  /// Priced energy uses this for idle spans: cost of a constant P-watt
  /// draw over [a, b] is P / 3.6e6 * integral(a, b) dollars.
  [[nodiscard]] double integral(Seconds a, Seconds b) const;

  [[nodiscard]] Seconds period() const { return period_; }
  [[nodiscard]] const std::vector<std::pair<Seconds, double>>& knots() const {
    return knots_;
  }

  /// Deterministic JSON (insertion-ordered keys).
  [[nodiscard]] JsonValue to_json() const;

 private:
  /// Value at phase u in [0, period).
  [[nodiscard]] double at_phase(double u) const;
  /// Integral over [0, u] for u in [0, period].
  [[nodiscard]] double prefix_integral(double u) const;

  Seconds period_{86400.0};
  std::vector<std::pair<Seconds, double>> knots_;
  double period_area_ = 0.0;  ///< integral over one full period
};

/// The two tariffs a Site carries. Same representation; the aliases keep
/// signatures self-documenting ($/kWh vs gCO2e/kWh).
using EnergyPriceCurve = PiecewiseCurve;
using CarbonCurve = PiecewiseCurve;

/// Seeded diurnal curve: `knots` evenly spaced knots over `period`
/// tracing base * (1 + swing * cos(2*pi * (t - peak_at) / period)),
/// each knot perturbed by a deterministic multiplicative jitter drawn
/// from Rng(seed) in [1 - jitter, 1 + jitter] (clamped at zero). The
/// same (seed, shape) always yields byte-identical curves.
[[nodiscard]] PiecewiseCurve make_diurnal_curve(double base, double swing,
                                                Seconds period,
                                                Seconds peak_at,
                                                std::uint64_t seed,
                                                double jitter = 0.0,
                                                std::size_t knots = 24);

}  // namespace hcep::fed
