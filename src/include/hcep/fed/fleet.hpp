// Fleet simulation: route globally, simulate per site, merge the ledgers.
//
// simulate_fleet is the federation counterpart of
// traffic::simulate_traffic. It generates each site's regional arrival
// stream from a per-origin split of one fleet seed, merges the streams
// in time order, routes every request through a GlobalRouter, replays
// each site's assigned share through the assigned-arrival
// simulate_traffic overload (one event loop per site — the fleet tier
// owns all cross-site parallelism), and folds the per-site results into
// one FleetReport: fleet totals, a routes matrix, per-class END-TO-END
// latency ledgers that include WAN transit, time-of-use energy cost and
// carbon ledgers integrated against each site's curves, and the merged
// obs metrics snapshot.
//
// Determinism contract: for a fixed (scenario, FleetOptions::seed) the
// FleetReport JSON is byte-identical across runs and across
// FleetOptions::shards values — shards only controls how many site
// simulations run concurrently; each site's simulation is an
// independent deterministic single-shard run either way
// (tests/test_fed.cpp and the `hcep selftest fed` smoke pin this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hcep/fed/router.hpp"
#include "hcep/fed/site.hpp"
#include "hcep/hw/network.hpp"
#include "hcep/obs/metrics.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/util/json.hpp"
#include "hcep/util/units.hpp"

namespace hcep::fed {

struct FleetOptions {
  /// First-attempt arrivals generated per ORIGIN site (the regional
  /// demand volume, before routing moves any of it).
  std::uint64_t requests_per_site = 10000;
  std::uint64_t seed = 1;
  /// Site simulations to run concurrently (thread-pool fan-out).
  /// Results are byte-identical for every value — unlike
  /// TrafficOptions::shards this knob never partitions an event loop.
  std::size_t shards = 1;
  RouterOptions router{};
  /// Per-site dispatch/admission/retry, shared across the fleet (the
  /// per-site control plane lives on Site::control).
  cluster::DispatchPolicy policy =
      cluster::DispatchPolicy::kJoinShortestQueue;
  traffic::AdmissionOptions admission{};
  traffic::RetryPolicy retry{};
  /// Streaming telemetry per site. Enabling it also switches the cost
  /// ledgers from mean-tariff pricing to exact per-window integration
  /// and fills FleetReport::cost_windows.
  obs::stream::StreamOptions stream{};
};

/// One tumbling window of the fleet cost ledger (streaming runs only):
/// energy, $ and gCO2e summed across sites, each site's window energy
/// priced at that site's tariff at the window midpoint. Windows align
/// across sites (every site's timeline starts at 0 with the shared
/// width), so the sum is well-defined.
struct CostWindow {
  Seconds t0{};
  Seconds t1{};
  Joules energy{};
  double cost = 0.0;      ///< $
  double carbon_g = 0.0;  ///< gCO2e

  [[nodiscard]] JsonValue to_json() const;
};

/// One site's share of the fleet run.
struct SiteReport {
  std::string name;
  std::uint64_t routed = 0;  ///< requests this site executed
  std::uint64_t local = 0;   ///< of those, originated here
  /// Site cluster energy including the idle-floor tail from its own
  /// makespan to the fleet horizon (early finishers keep drawing their
  /// idle floor until the fleet is done).
  Joules energy{};
  double energy_cost = 0.0;  ///< $, integrated against Site::price
  double carbon_g = 0.0;     ///< gCO2e, integrated against Site::carbon
  /// Full per-cluster result of the assigned-arrival replay.
  traffic::TrafficResult result;

  [[nodiscard]] JsonValue to_json() const;
};

/// Fleet-wide per-class ledger over END-TO-END latency: WAN transit to
/// the chosen site plus the site-local sojourn. SLO violations are
/// judged on that sum — a placement that saves energy but blows the
/// latency budget in transit shows up here.
struct FleetClassLedger {
  std::string name;
  traffic::SloTarget slo{};
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t slo_violations = 0;  ///< completions with e2e above SLO
  Seconds mean_transit{};
  traffic::LatencySummary e2e;  ///< transit + sojourn, completions only

  /// Fraction of completions that individually exceeded the SLO.
  [[nodiscard]] double violation_fraction() const;

  [[nodiscard]] JsonValue to_json() const;
};

struct FleetReport {
  std::string router_policy;
  std::uint64_t seed = 0;
  Seconds horizon{};  ///< max site makespan
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cross_site = 0;  ///< requests routed away from origin

  Joules energy{};           ///< sum of site energies incl. idle tails
  double energy_cost = 0.0;  ///< $ fleet total
  double carbon_g = 0.0;     ///< gCO2e fleet total

  std::vector<SiteReport> sites;
  std::vector<FleetClassLedger> classes;
  /// routes[origin][target] = requests moved origin -> target.
  std::vector<std::vector<std::uint64_t>> routes;
  /// Streaming runs only; see CostWindow. Window sums plus the
  /// post-makespan idle tails equal the fleet totals above.
  std::vector<CostWindow> cost_windows;

  /// Merged obs metrics across sites (site order; empty without
  /// HCEP_OBS). Like TrafficResult::control, deliberately NOT part of
  /// to_json() — the report document stays identical whether or not
  /// the binary was built with observability.
  obs::MetricsSnapshot metrics;

  /// Deterministic JSON (insertion-ordered keys; same (scenario, seed)
  /// runs are byte-identical, for every FleetOptions::shards).
  [[nodiscard]] JsonValue to_json() const;
};

/// Runs the full federation pipeline described in the header comment.
/// Requires: at least one site, network.size() == sites.size(), every
/// site carrying an arrival process, a non-empty class mix.
[[nodiscard]] FleetReport simulate_fleet(
    const std::vector<Site>& sites, const hw::InterSiteNetwork& network,
    const std::vector<traffic::TrafficClass>& classes,
    const FleetOptions& options);

}  // namespace hcep::fed
