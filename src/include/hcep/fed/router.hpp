// Global request routing across federation sites.
//
// The tier above per-cluster dispatch: each request originates at a
// site (its region's front-end) and the GlobalRouter decides which
// site's cluster executes it, trading WAN transit time against the
// destination's time-of-use energy price, carbon intensity and current
// load. Placement is strictly deterministic — every policy breaks ties
// lexicographically on the site index, consults no RNG and iterates
// only index-ordered state — so a fixed (seed, scenario) fleet run is
// byte-reproducible (hcep-lint's site-id-determinism rule guards the
// header against address-based site identity creeping in).
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "hcep/fed/site.hpp"
#include "hcep/hw/network.hpp"
#include "hcep/traffic/simulate.hpp"
#include "hcep/util/units.hpp"

namespace hcep::fed {

enum class RoutePolicy : std::uint8_t {
  kNearest,         ///< lowest transit (ties to origin: stay local)
  kRoundRobin,      ///< static rotation, load- and price-blind
  kPinned,          ///< everything to RouterOptions::pinned_site
  kCheapestEnergy,  ///< lowest $/kWh at the landing instant
  kLowestCarbon,    ///< lowest gCO2e/kWh at the landing instant
  kSloHybrid,       ///< SLO-transit filter, then headroom, then price
};

[[nodiscard]] const char* route_policy_name(RoutePolicy policy);
/// Inverse of route_policy_name; throws PreconditionError on unknown
/// names (CLI surface).
[[nodiscard]] RoutePolicy parse_route_policy(std::string_view name);

struct RouterOptions {
  RoutePolicy policy = RoutePolicy::kSloHybrid;
  /// Target of kPinned (the single-site baselines of the keystone).
  std::size_t pinned_site = 0;
  /// kSloHybrid load gate: a site is load-feasible while the expected
  /// utilization of its recent placements (work-aware — each request
  /// weighed by its class's service share on that site) stays below
  /// this fraction of capacity.
  double headroom = 0.85;
  /// kSloHybrid transit gate: a remote site is SLO-feasible for a class
  /// only while transit <= transit_slack * slo.latency (the origin is
  /// always feasible at zero transit).
  double transit_slack = 0.25;
  /// Sliding window over which recent placements count as load.
  Seconds load_window{5.0};
  /// WAN payload per request (zero = latency-only transit).
  Bytes request_payload{};
};

/// One routing decision. `index` is the fleet-wide arrival index in
/// merged time order; `t` the origin-side arrival instant; the request
/// reaches `target`'s cluster at t + transit.
struct Assignment {
  std::uint64_t index = 0;
  std::uint32_t origin = 0;
  std::uint32_t target = 0;
  std::uint32_t cls = 0;
  Seconds t{};
  Seconds transit{};
};

class GlobalRouter {
 public:
  /// Views over the caller's scenario (not copied; must outlive the
  /// router). Capacities are precomputed per site via
  /// traffic::cluster_capacity_per_s under the shared class mix.
  GlobalRouter(const std::vector<Site>& sites,
               const hw::InterSiteNetwork& network,
               const std::vector<traffic::TrafficClass>& classes,
               const RouterOptions& options);

  /// Places one arrival. Must be called in nondecreasing `t` order
  /// (merged fleet time); records the decision in assignments().
  Assignment route(std::size_t origin, std::uint32_t cls, Seconds t);

  /// Pre-sizes the decision log (the caller knows the fleet volume).
  void reserve(std::size_t expected) { log_.reserve(expected); }

  /// Every decision in call order (fleet arrival index order).
  [[nodiscard]] const std::vector<Assignment>& assignments() const {
    return log_;
  }

  /// Requests currently inside the sliding load window at `site`.
  [[nodiscard]] std::size_t window_load(std::size_t site) const {
    return recent_[site].size();
  }

 private:
  /// One placement in the sliding window: routing instant plus the
  /// request's expected work, normalized to site capacity (class-aware:
  /// a batch job weighs its full service share, not "one request").
  struct Placement {
    double t = 0.0;
    double work = 0.0;  ///< site-seconds: 1 / single-class capacity
  };

  [[nodiscard]] std::size_t pick(std::size_t origin, std::uint32_t cls,
                                 Seconds t);
  /// Prunes placements older than t - load_window, returns the summed
  /// normalized work still inside the window.
  double load(std::size_t site, Seconds t);

  const std::vector<Site>* sites_;
  const hw::InterSiteNetwork* network_;
  const std::vector<traffic::TrafficClass>* classes_;
  RouterOptions options_;
  /// Pairwise transit at the configured payload, row-major n x n — the
  /// topology is time-invariant, so it is sampled once at construction
  /// and the per-request path never re-derives it.
  std::vector<Seconds> transit_;
  std::vector<std::size_t> nearest_;  ///< per-origin argmin of transit_
  /// work_[site][cls]: expected site-seconds one class-`cls` request
  /// costs `site` (the inverse of the site's single-class capacity), so
  /// window work / window width is directly a utilization estimate.
  std::vector<std::vector<double>> work_;
  std::vector<std::deque<Placement>> recent_;  ///< sorted by instant
  std::vector<double> window_work_;            ///< running sum per site
  std::uint64_t rr_ = 0;
  std::vector<Assignment> log_;
};

}  // namespace hcep::fed
