// memcached-style kernel: an in-memory key-value store (open-addressing
// hash table with linear probing) driven by a memslap-like client mix of
// uniformly popular fixed-size GET requests with a small SET fraction.
// Work unit: one byte served to the client (Table 6 expresses memcached
// PPR in (bytes/s)/W). Service demand is spread over core (hashing,
// probing), memory (value copies out of a table larger than cache) and
// network I/O (request/response bytes) — the "complex service demands"
// the paper cites.
#pragma once

#include <cstddef>
#include <vector>

#include "hcep/kernels/kernel.hpp"

namespace hcep::kernels {

/// Minimal open-addressing hash table with fixed-size keys and values,
/// used as the store behind the kernel (and tested on its own).
class FlatKvTable {
 public:
  static constexpr std::size_t kKeySize = 16;
  static constexpr std::size_t kValueSize = 64;

  /// Capacity is rounded up to a power of two; load factor stays <= 0.5.
  explicit FlatKvTable(std::size_t capacity);

  /// Inserts or overwrites; returns false when the table is full.
  bool set(std::uint64_t key, const unsigned char* value);
  /// Copies the value into `out` (kValueSize bytes); returns false on miss.
  bool get(std::uint64_t key, unsigned char* out) const;
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }
  /// Probes performed by the last get/set (instrumentation hook).
  [[nodiscard]] std::size_t last_probes() const { return last_probes_; }

 private:
  struct Slot {
    std::uint64_t key = kEmpty;
    unsigned char value[kValueSize] = {};
  };
  static constexpr std::uint64_t kEmpty = ~0ULL;

  [[nodiscard]] std::size_t bucket(std::uint64_t key) const;

  std::vector<Slot> slots_;
  std::size_t mask_;
  std::size_t size_ = 0;
  mutable std::size_t last_probes_ = 0;
};

class KvStoreKernel final : public Kernel {
 public:
  /// `entries` pre-populated key-value pairs; the default working set
  /// (256K x 72B slots = 18 MB) exceeds both nodes' caches so GETs stream
  /// from memory, as memcached does.
  explicit KvStoreKernel(std::size_t entries = 131072);

  [[nodiscard]] std::string name() const override { return "memcached"; }
  [[nodiscard]] std::string work_unit() const override { return "bytes"; }
  [[nodiscard]] KernelResult run(std::uint64_t units, Rng& rng) override;

 private:
  std::size_t entries_;
};

}  // namespace hcep::kernels
