// PARSEC blackscholes-style kernel: prices European call/put options with
// the closed-form Black-Scholes formula using the same polynomial CNDF
// approximation as the benchmark. Work unit: one option priced.
// FP-compute bound with a small streaming input array.
#pragma once

#include "hcep/kernels/kernel.hpp"

namespace hcep::kernels {

class BlackScholesKernel final : public Kernel {
 public:
  [[nodiscard]] std::string name() const override { return "blackscholes"; }
  [[nodiscard]] std::string work_unit() const override { return "options"; }
  [[nodiscard]] KernelResult run(std::uint64_t units, Rng& rng) override;

  /// Prices one option; exposed for direct testing against reference
  /// values. `call` selects call (true) or put (false).
  [[nodiscard]] static double price(double spot, double strike, double rate,
                                    double volatility, double expiry,
                                    bool call);
};

}  // namespace hcep::kernels
