// Workload kernels.
//
// The paper characterizes six datacenter programs (NPB-EP, memcached, x264,
// blackscholes, Julius, OpenSSL RSA-2048) by running them under `perf`. We
// replace each with an executable computational kernel that performs the
// same *kind* of work (Monte-Carlo sampling, key-value lookups, block
// video encoding, option pricing, Viterbi decoding, modular exponentiation)
// and emits the abstract operation counts the characterization stage needs.
// Every kernel really computes — each returns a checksum so results are
// testable and the work cannot be optimized away.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hcep/util/rng.hpp"
#include "hcep/util/units.hpp"

namespace hcep::kernels {

/// Abstract operation counts accumulated over a kernel run; the unit of
/// "work" is kernel-specific (random numbers, options, frames, ...).
struct OpCounts {
  std::uint64_t int_ops = 0;     ///< integer ALU operations
  std::uint64_t fp_ops = 0;      ///< floating-point operations
  std::uint64_t branch_ops = 0;  ///< taken/evaluated branches
  std::uint64_t crypto_ops = 0;  ///< wide-multiply crypto primitive ops
  Bytes mem_traffic{};           ///< bytes streamed past the cache hierarchy
  Bytes io_bytes{};              ///< bytes moved over the network
  std::uint64_t work_units = 0;  ///< units of useful work completed

  OpCounts& operator+=(const OpCounts& o);
  [[nodiscard]] friend OpCounts operator+(OpCounts a, const OpCounts& b) {
    a += b;
    return a;
  }
  /// Per-unit counts (divides every field by work_units).
  [[nodiscard]] OpCounts per_unit() const;
};

/// Result of a kernel invocation: the op counts plus a checksum over the
/// actual computed values (determinism anchor for tests).
struct KernelResult {
  OpCounts counts;
  std::uint64_t checksum = 0;
};

/// A runnable, instrumented workload kernel.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Program name as the paper spells it ("EP", "memcached", "x264",
  /// "blackscholes", "Julius", "RSA-2048").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Human name of the work unit ("random no.", "bytes", "frames",
  /// "options", "samples", "verify") — matches Table 6's PPR units.
  [[nodiscard]] virtual std::string work_unit() const = 0;

  /// Performs `units` units of real work using `rng` for any stochastic
  /// input, returning instrumentation counts and a checksum.
  [[nodiscard]] virtual KernelResult run(std::uint64_t units, Rng& rng) = 0;
};

using KernelPtr = std::unique_ptr<Kernel>;

}  // namespace hcep::kernels
