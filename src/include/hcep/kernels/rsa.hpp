// OpenSSL `speed rsa2048`-style verification kernel: performs real RSA
// signature verification s^e mod n with e = 65537 over a 2048-bit modulus,
// using a fixed-width multi-precision integer and square-and-multiply
// exponentiation. Work unit: one verification. Integer/crypto bound; the
// crypto_ops count lets the cost model apply the K10's ISA acceleration
// (the paper attributes the K10's superior RSA PPR to special
// instructions, Table 6 discussion).
#pragma once

#include <array>
#include <cstdint>

#include "hcep/kernels/kernel.hpp"

namespace hcep::kernels {

/// Fixed-width little-endian big integer: 2048 bits = 32 x 64-bit limbs.
class UInt2048 {
 public:
  static constexpr std::size_t kLimbs = 32;

  UInt2048() = default;
  /// From a small value.
  explicit UInt2048(std::uint64_t v) { limbs_[0] = v; }
  /// Random value below `modulus` (rejection on the top limb).
  static UInt2048 random_below(const UInt2048& modulus, Rng& rng);

  [[nodiscard]] std::uint64_t limb(std::size_t i) const { return limbs_[i]; }
  void set_limb(std::size_t i, std::uint64_t v) { limbs_[i] = v; }

  [[nodiscard]] bool operator==(const UInt2048&) const = default;
  [[nodiscard]] bool operator<(const UInt2048& o) const;
  [[nodiscard]] bool is_zero() const;
  [[nodiscard]] int bit(std::size_t i) const;
  [[nodiscard]] std::size_t bit_length() const;

  /// this -= o (requires *this >= o).
  void sub(const UInt2048& o);

  /// 64-bit fold of all limbs (checksum helper).
  [[nodiscard]] std::uint64_t fold() const;

 private:
  std::array<std::uint64_t, kLimbs> limbs_{};
};

/// Modular arithmetic over a fixed odd modulus; counts limb operations.
class ModContext {
 public:
  explicit ModContext(const UInt2048& modulus);

  /// (a * b) mod n via schoolbook multiply + binary reduction.
  [[nodiscard]] UInt2048 mul_mod(const UInt2048& a, const UInt2048& b);
  /// a^e mod n with 17-bit exponent 65537 (F4), square-and-multiply.
  [[nodiscard]] UInt2048 pow_f4(const UInt2048& a);

  [[nodiscard]] std::uint64_t limb_mul_ops() const { return limb_mul_ops_; }
  [[nodiscard]] std::uint64_t limb_add_ops() const { return limb_add_ops_; }
  void reset_counters();

 private:
  UInt2048 modulus_;
  std::uint64_t limb_mul_ops_ = 0;
  std::uint64_t limb_add_ops_ = 0;
};

class RsaKernel final : public Kernel {
 public:
  [[nodiscard]] std::string name() const override { return "RSA-2048"; }
  [[nodiscard]] std::string work_unit() const override { return "verify"; }
  [[nodiscard]] KernelResult run(std::uint64_t units, Rng& rng) override;
};

}  // namespace hcep::kernels
