// x264-style video encoding kernel: per frame it runs diamond-search
// motion estimation (16x16 macroblocks, SAD cost) against the previous
// frame, computes 4x4 integer-DCT residual transforms and quantizes the
// coefficients — the three dominant loops of a real H.264 encoder.
// Work unit: one encoded frame. Heavily memory-bound (frame pairs stream
// past the cache), matching the paper's observation that x264 favours the
// K10's memory bandwidth.
#pragma once

#include <cstdint>
#include <vector>

#include "hcep/kernels/kernel.hpp"

namespace hcep::kernels {

class X264Kernel final : public Kernel {
 public:
  /// Frame geometry defaults to QVGA-ish luma planes; must be multiples
  /// of 16.
  X264Kernel(unsigned width = 320, unsigned height = 240);

  [[nodiscard]] std::string name() const override { return "x264"; }
  [[nodiscard]] std::string work_unit() const override { return "frames"; }
  [[nodiscard]] KernelResult run(std::uint64_t units, Rng& rng) override;

  /// Sum of absolute differences between two 16x16 blocks with the given
  /// strides; exposed for unit testing.
  [[nodiscard]] static std::uint32_t sad16(const std::uint8_t* a,
                                           std::size_t stride_a,
                                           const std::uint8_t* b,
                                           std::size_t stride_b);

  /// In-place 4x4 forward integer DCT (H.264 core transform) on `block`
  /// (row-major int16). Exposed for unit testing.
  static void dct4x4(std::int16_t block[16]);

 private:
  unsigned width_;
  unsigned height_;
};

}  // namespace hcep::kernels
