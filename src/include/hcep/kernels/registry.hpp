// Kernel registry: constructs kernels by the paper's program names.
#pragma once

#include <string>
#include <vector>

#include "hcep/kernels/kernel.hpp"

namespace hcep::kernels {

/// Program names in the paper's order (Tables 4/6/7):
/// EP, memcached, x264, blackscholes, Julius, RSA-2048.
[[nodiscard]] std::vector<std::string> kernel_names();

/// Constructs the kernel for a program name; throws
/// hcep::PreconditionError for unknown names.
[[nodiscard]] KernelPtr make_kernel(const std::string& name);

/// All six kernels in paper order.
[[nodiscard]] std::vector<KernelPtr> make_all_kernels();

}  // namespace hcep::kernels
