// Julius-style speech recognition kernel: Viterbi decoding of synthetic
// acoustic feature frames against a left-to-right HMM with Gaussian
// emission scoring — the inner loop that dominates a real large-vocabulary
// decoder's first pass. Work unit: one acoustic sample (frame) decoded.
// FP-bound with a moderate model working set.
#pragma once

#include <vector>

#include "hcep/kernels/kernel.hpp"

namespace hcep::kernels {

class JuliusKernel final : public Kernel {
 public:
  /// `states` HMM states, `mixtures` Gaussians per state, `dims`
  /// feature-vector dimensionality (MFCC-like 13 by default).
  JuliusKernel(unsigned states = 64, unsigned mixtures = 4,
               unsigned dims = 13);

  [[nodiscard]] std::string name() const override { return "Julius"; }
  [[nodiscard]] std::string work_unit() const override { return "samples"; }
  [[nodiscard]] KernelResult run(std::uint64_t units, Rng& rng) override;

  /// Best final-state log-probability of the last run (testing hook).
  [[nodiscard]] double last_score() const { return last_score_; }

 private:
  unsigned states_;
  unsigned mixtures_;
  unsigned dims_;
  double last_score_ = 0.0;
};

}  // namespace hcep::kernels
