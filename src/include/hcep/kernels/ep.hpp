// NPB-EP style embarrassingly parallel Monte-Carlo kernel: generates
// Gaussian pairs by the Marsaglia polar method over a multiplicative LCG
// stream and tallies them into annuli, exactly as NAS EP does. Work unit:
// one generated random number. Compute-bound, tiny working set.
#pragma once

#include <array>

#include "hcep/kernels/kernel.hpp"

namespace hcep::kernels {

class EpKernel final : public Kernel {
 public:
  [[nodiscard]] std::string name() const override { return "EP"; }
  [[nodiscard]] std::string work_unit() const override { return "random no."; }
  [[nodiscard]] KernelResult run(std::uint64_t units, Rng& rng) override;

  /// Annulus tallies from the last run (NAS EP's Q[] verification output).
  [[nodiscard]] const std::array<std::uint64_t, 10>& tallies() const {
    return tallies_;
  }

 private:
  std::array<std::uint64_t, 10> tallies_{};
};

}  // namespace hcep::kernels
