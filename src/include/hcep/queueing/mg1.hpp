// M/G/1 queueing (extension of the paper's M/D/1 view).
//
// The simulated testbed jitters service times (overheads.hpp), so the
// real queue is M/G/1, not M/D/1. This module carries the general
// Pollaczek-Khinchine results parameterized by the service-time
// squared coefficient of variation (SCV = variance / mean^2):
//
//   SCV = 0   deterministic service (the paper's model)
//   SCV = 1   exponential service (M/M/1)
//
// Percentiles use the standard two-moment gamma approximation of the
// waiting time conditioned on waiting, which is exact for M/M/1 and
// within a few percent of simulation for the small SCVs the testbed
// produces (cross-checked in tests).
#pragma once

#include <cstdint>

#include "hcep/util/units.hpp"

namespace hcep::queueing {

class MG1 {
 public:
  /// `scv` >= 0 is the service-time squared coefficient of variation.
  MG1(Seconds mean_service, double arrival_rate_per_s, double scv);

  [[nodiscard]] static MG1 from_utilization(Seconds mean_service,
                                            double utilization, double scv);

  [[nodiscard]] Seconds mean_service() const { return service_; }
  [[nodiscard]] double arrival_rate() const { return lambda_; }
  [[nodiscard]] double scv() const { return scv_; }
  [[nodiscard]] double utilization() const;

  /// P-K: W = rho S (1 + SCV) / (2 (1 - rho)).
  [[nodiscard]] Seconds mean_wait() const;
  [[nodiscard]] Seconds mean_response() const;

  /// First and second moments of the waiting time (second via the P-K
  /// transform moments with the gamma service assumption matching the
  /// first two service moments).
  [[nodiscard]] double wait_variance() const;

  /// Approximate P(W <= t): atom 1-rho at zero plus a gamma tail fitted
  /// to the conditional wait's first two moments.
  [[nodiscard]] double wait_cdf(Seconds t) const;
  [[nodiscard]] Seconds wait_percentile(double p) const;
  [[nodiscard]] Seconds response_percentile(double p) const;

 private:
  Seconds service_;
  double lambda_;
  double scv_;
};

/// Event-driven M/G/1 simulation with gamma-distributed service of the
/// given SCV (degenerates to deterministic at scv == 0).
struct MG1SimResult {
  double mean_wait_s = 0.0;
  double p95_response_s = 0.0;
};
[[nodiscard]] MG1SimResult simulate_mg1(Seconds mean_service,
                                        double arrival_rate_per_s, double scv,
                                        std::uint64_t jobs,
                                        std::uint64_t seed = 1);

}  // namespace hcep::queueing
