// M/D/1 queueing analytics.
//
// The paper models job arrivals at the dispatcher as an M/D/1 queue
// (Section II-B): Poisson arrivals at rate lambda_job, deterministic
// service time T_P, utilization U = T_P * lambda_job. We provide the
// closed-form Pollaczek-Khinchine mean, the exact waiting-time CDF
// (Erlang's alternating series, evaluated in long double with a stable
// geometric-tail fallback) and percentile inversion — which yields the
// 95th-percentile response times of Figures 11/12.
#pragma once

#include <cstdint>

#include "hcep/util/units.hpp"

namespace hcep::queueing {

/// An M/D/1 queue with deterministic service time and Poisson arrivals.
class MD1 {
 public:
  /// Requires service > 0 and utilization = arrival_rate * service < 1.
  MD1(Seconds service, double arrival_rate_per_s);

  /// Builds from a target utilization instead of a rate.
  [[nodiscard]] static MD1 from_utilization(Seconds service,
                                            double utilization);

  [[nodiscard]] Seconds service() const { return service_; }
  [[nodiscard]] double arrival_rate() const { return lambda_; }
  [[nodiscard]] double utilization() const;

  /// Pollaczek-Khinchine mean waiting time rho*S / (2 (1 - rho)).
  [[nodiscard]] Seconds mean_wait() const;
  /// Mean response (sojourn) = wait + service.
  [[nodiscard]] Seconds mean_response() const;
  /// Mean number in system (Little).
  [[nodiscard]] double mean_in_system() const;

  /// Exact P(W <= t) for the FIFO waiting time.
  [[nodiscard]] double wait_cdf(Seconds t) const;
  /// P(response <= t) = P(W <= t - S).
  [[nodiscard]] double response_cdf(Seconds t) const;

  /// Waiting-time percentile, p in (0, 100).
  [[nodiscard]] Seconds wait_percentile(double p) const;
  /// Response-time percentile (wait percentile + service).
  [[nodiscard]] Seconds response_percentile(double p) const;

 private:
  Seconds service_;
  double lambda_;
};

/// M/M/1 reference queue (exponential service with the same mean), used in
/// tests to bracket the M/D/1 results (deterministic service halves the
/// mean wait).
class MM1 {
 public:
  MM1(Seconds mean_service, double arrival_rate_per_s);

  [[nodiscard]] double utilization() const;
  [[nodiscard]] Seconds mean_wait() const;
  [[nodiscard]] Seconds mean_response() const;
  [[nodiscard]] double response_cdf(Seconds t) const;
  [[nodiscard]] Seconds response_percentile(double p) const;

 private:
  Seconds service_;
  double lambda_;
};

/// Event-driven single-queue simulator for cross-validating the analytic
/// results (and the only exact option when service times vary by job).
struct QueueSimResult {
  double mean_wait_s = 0.0;
  double p95_response_s = 0.0;
  double mean_response_s = 0.0;
  double measured_utilization = 0.0;
};

/// Simulates a FIFO single-server queue with Poisson arrivals and
/// deterministic service; `jobs` arrivals are generated.
[[nodiscard]] QueueSimResult simulate_md1(Seconds service,
                                          double arrival_rate_per_s,
                                          std::uint64_t jobs,
                                          std::uint64_t seed = 1);

}  // namespace hcep::queueing
