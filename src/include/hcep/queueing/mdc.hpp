// M/D/c multi-server queueing (extension).
//
// The dispatch simulator serves jobs on individual nodes; its analytic
// counterpart is an M/D/c queue. Exact M/D/c waiting times have no closed
// form; we carry the standard Allen-Cunneen approximation
//
//   Wq(M/D/c) ~ (C_a^2 + C_s^2)/2 * Wq(M/M/c) = Wq(M/M/c) / 2
//
// built on the Erlang-C delay probability. At c = 1 it reduces EXACTLY to
// the M/D/1 Pollaczek-Khinchine mean (tested); for homogeneous node pools
// it tracks the join-shortest-queue dispatch simulation within ~25 %.
#pragma once

#include "hcep/util/units.hpp"

namespace hcep::queueing {

/// Erlang-C: probability an arrival must wait in an M/M/c queue with
/// offered load a = lambda/mu and c servers (a < c). Computed with the
/// standard stable recurrence.
[[nodiscard]] double erlang_c(double offered_load, unsigned servers);

class MDc {
 public:
  /// `service` is the deterministic per-job service time on ONE server.
  MDc(Seconds service, double arrival_rate_per_s, unsigned servers);

  [[nodiscard]] static MDc from_utilization(Seconds service,
                                            double utilization,
                                            unsigned servers);

  [[nodiscard]] Seconds service() const { return service_; }
  [[nodiscard]] unsigned servers() const { return servers_; }
  [[nodiscard]] double arrival_rate() const { return lambda_; }
  /// Per-server utilization rho = lambda S / c.
  [[nodiscard]] double utilization() const;
  /// Probability of queueing (Erlang-C).
  [[nodiscard]] double wait_probability() const;
  /// Allen-Cunneen mean waiting time.
  [[nodiscard]] Seconds mean_wait() const;
  [[nodiscard]] Seconds mean_response() const;

 private:
  Seconds service_;
  double lambda_;
  unsigned servers_;
};

}  // namespace hcep::queueing
