// PaperStudy: one-stop reproduction facade.
//
// Builds the calibrated workload catalog once (kernels really run during
// construction) and exposes each table/figure's data through a single
// call. The bench binaries are thin wrappers over this class; library
// users get the same entry points programmatically.
#pragma once

#include <string>
#include <vector>

#include "hcep/analysis/cluster_study.hpp"
#include "hcep/analysis/pareto_study.hpp"
#include "hcep/analysis/response_study.hpp"
#include "hcep/analysis/single_node.hpp"
#include "hcep/analysis/validation.hpp"
#include "hcep/hw/catalog.hpp"
#include "hcep/workload/catalog.hpp"

namespace hcep::core {

class PaperStudy {
 public:
  /// Runs characterization + calibration for all six programs.
  explicit PaperStudy(const workload::CatalogOptions& options = {});

  [[nodiscard]] const std::vector<workload::Workload>& workloads() const {
    return workloads_;
  }
  [[nodiscard]] const workload::Workload& workload(
      const std::string& program) const;

  /// Table 4: model-vs-testbed validation rows.
  [[nodiscard]] std::vector<analysis::ValidationRow> table4() const;

  /// Tables 6 + 7: single-node analyses for every (program, node) pair,
  /// ordered program-major (A9 then K10).
  [[nodiscard]] std::vector<analysis::NodeWorkloadAnalysis>
  single_node_analyses() const;

  /// Table 8 / Figures 7-8: mix analyses of the 1 kW budget mixes for one
  /// program.
  [[nodiscard]] std::vector<analysis::MixAnalysis> budget_mix_analyses(
      const std::string& program) const;

  /// Figures 9/10: Pareto-mix proportionality study.
  [[nodiscard]] analysis::ParetoStudyResult pareto_study(
      const std::string& program, bool compute_frontier = true) const;

  /// Figures 11/12: 95th-percentile response-time study.
  [[nodiscard]] analysis::ResponseStudyResult response_study(
      const std::string& program, bool cross_check_des = false) const;

 private:
  std::vector<workload::Workload> workloads_;
};

}  // namespace hcep::core
