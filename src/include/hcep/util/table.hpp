// Text output helpers: paper-style aligned tables, CSV, and gnuplot-ready
// series files. All reproduction benches render through these so their
// output can be diffed against the paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hcep {

/// Column-aligned plain-text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
[[nodiscard]] std::string fmt(double v, int precision = 2);

/// Formats a double in engineering style: 6048057 -> "6,048,057" when
/// `thousands` is true (the paper prints Table 6 PPRs this way).
[[nodiscard]] std::string fmt_grouped(double v);

/// Writes (x, y...) series blocks in gnuplot "plot ... index n" format.
class SeriesWriter {
 public:
  /// Starts a new named series (becomes a `# name` comment block).
  void begin_series(const std::string& name);
  void point(double x, double y);
  void point(double x, const std::vector<double>& ys);

  /// Full file contents.
  [[nodiscard]] std::string str() const { return out_; }
  /// Writes contents to `path`; throws hcep::Error on I/O failure.
  void save(const std::string& path) const;

 private:
  std::string out_;
  bool any_series_ = false;
};

/// Minimal CSV writer (quotes fields containing separators).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);
  void add_row(const std::vector<std::string>& row);
  [[nodiscard]] std::string str() const { return out_; }
  void save(const std::string& path) const;

 private:
  std::size_t width_;
  std::string out_;
  void emit(const std::vector<std::string>& row);
};

}  // namespace hcep
