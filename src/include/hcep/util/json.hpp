// Minimal JSON writer (no parsing): enough to serialize study results for
// downstream tooling. Produces deterministic, RFC 8259-conformant output
// with keys in insertion order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hcep {

/// A write-only JSON value tree.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue number(std::int64_t v);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  [[nodiscard]] Kind kind() const { return kind_; }

  /// Array append (requires kind kArray).
  JsonValue& push(JsonValue v);
  /// Object insert/overwrite-free append (requires kind kObject; duplicate
  /// keys are a programming error and throw).
  JsonValue& set(const std::string& key, JsonValue v);

  /// Compact serialization.
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization with 2-space indentation.
  [[nodiscard]] std::string dump_pretty() const;

 private:
  void write(std::string& out, int indent, bool pretty) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  bool integral_ = false;
  std::int64_t int_number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> fields_;
};

/// Escapes a string per JSON rules (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace hcep
