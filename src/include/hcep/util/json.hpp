// Minimal JSON value tree: a deterministic RFC 8259-conformant writer
// (keys in insertion order) plus a strict recursive-descent parser, so
// study results and telemetry exports can be serialized *and* loaded
// back in (the trace reader and the `hcep profile` smoke test both
// re-parse our own output).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hcep {

/// A JSON value tree.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue number(std::int64_t v);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  /// Strict parse of one JSON document (trailing garbage throws).
  /// Numbers without fraction/exponent that fit an int64 parse as
  /// integral, so dump(parse(dump(x))) is stable for our own output.
  static JsonValue parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }

  /// Array append (requires kind kArray).
  JsonValue& push(JsonValue v);
  /// Object insert/overwrite-free append (requires kind kObject; duplicate
  /// keys are a programming error and throw).
  JsonValue& set(const std::string& key, JsonValue v);

  // Read accessors; kind mismatches throw PreconditionError.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;      ///< any number, widened
  [[nodiscard]] std::int64_t as_int() const;   ///< integral numbers only
  [[nodiscard]] const std::string& as_string() const;
  /// Element count of an array or object (scalars throw).
  [[nodiscard]] std::size_t size() const;
  /// Array element by index (bounds-checked).
  [[nodiscard]] const JsonValue& at(std::size_t index) const;
  /// Object field by key, or nullptr when absent.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Object field by key; missing keys throw.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  /// Object fields in insertion order (requires kind kObject).
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  fields() const;

  /// Compact serialization.
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization with 2-space indentation.
  [[nodiscard]] std::string dump_pretty() const;

 private:
  void write(std::string& out, int indent, bool pretty) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  bool integral_ = false;
  std::int64_t int_number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> fields_;
};

/// Escapes a string per JSON rules (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace hcep
