// Small numerical toolbox: interpolation, integration, root finding and
// error measures used throughout the models and metrics.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <utility>
#include <vector>

namespace hcep {

/// |a - b| / |b| expressed as a percentage; the paper's Table 4 reports
/// model-vs-measurement error this way. `b` is the reference (measured).
[[nodiscard]] double percent_error(double a, double b);

/// True when a and b agree to within `rel` relative tolerance (with an
/// absolute floor `abs` for values near zero).
[[nodiscard]] bool approx_equal(double a, double b, double rel = 1e-9,
                                double abs = 1e-12);

/// Composite trapezoid rule over [a, b] with n uniform panels.
[[nodiscard]] double trapezoid(const std::function<double(double)>& f, double a,
                               double b, std::size_t n);

/// Trapezoid rule over tabulated samples (xs strictly increasing).
[[nodiscard]] double trapezoid(std::span<const double> xs,
                               std::span<const double> ys);

/// Bisection root of f on [lo, hi]; requires a sign change.
[[nodiscard]] double bisect(const std::function<double(double)>& f, double lo,
                            double hi, double tol = 1e-12,
                            std::size_t max_iter = 200);

/// A piecewise-linear curve y(x) over sorted knots; the canonical
/// representation of a power-vs-utilization profile sampled at discrete
/// utilization levels.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  /// Builds from parallel knot arrays; xs must be strictly increasing.
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  /// Appends a knot; x must exceed the current last knot.
  void add(double x, double y);

  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] std::size_t size() const { return xs_.size(); }
  [[nodiscard]] double front_x() const;
  [[nodiscard]] double back_x() const;

  /// Linear interpolation; clamps outside the knot range.
  [[nodiscard]] double operator()(double x) const;

  /// Exact integral of the interpolant over [a, b] (clamped evaluation
  /// outside the knots).
  [[nodiscard]] double integral(double a, double b) const;

  [[nodiscard]] std::span<const double> xs() const { return xs_; }
  [[nodiscard]] std::span<const double> ys() const { return ys_; }

  /// Returns a curve with every y multiplied by k.
  [[nodiscard]] PiecewiseLinear scaled(double k) const;

  /// Pointwise sum of two curves over the union of their knots.
  friend PiecewiseLinear operator+(const PiecewiseLinear& a,
                                   const PiecewiseLinear& b);

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// Evenly spaced grid of n points covering [lo, hi] inclusive (n >= 2).
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Regularized lower incomplete gamma function P(a, x) = gamma(a, x)/Gamma(a),
/// a > 0, x >= 0. Series expansion for x < a + 1, continued fraction
/// otherwise (the gamma CDF with shape a and unit scale).
[[nodiscard]] double gamma_p(double a, double x);

}  // namespace hcep
