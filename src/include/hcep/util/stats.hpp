// Online and batch statistics used by the simulator's measurement layer:
// Welford running moments, exact percentiles from samples, the P-squared
// streaming quantile estimator and fixed-width histograms.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hcep {

/// Numerically stable running mean/variance (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile (linear interpolation between closest ranks) of a
/// sample set; `p` in [0, 100]. Sorts a copy; use for batch analysis.
[[nodiscard]] double percentile(std::span<const double> samples, double p);

/// In-place variant for callers that can afford mutating their buffer.
[[nodiscard]] double percentile_inplace(std::vector<double>& samples, double p);

/// P-squared (P2) streaming quantile estimator (Jain & Chlamtac, 1985).
/// Tracks one quantile with O(1) memory; the cluster simulator uses it for
/// 95th-percentile response times over long runs.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.95 for the 95th percentile.
  explicit P2Quantile(double q);

  void add(double x);
  [[nodiscard]] std::size_t count() const { return count_; }
  /// Current estimate; exact until 5 samples have arrived.
  [[nodiscard]] double value() const;

 private:
  double q_;
  std::size_t count_ = 0;
  double heights_[5] = {};
  double positions_[5] = {};
  double desired_[5] = {};
  double increments_[5] = {};
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so mass is never lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double total() const { return total_; }
  /// Smallest x with CDF(x) >= p/100 (bin upper edge granularity).
  [[nodiscard]] double percentile(double p) const;

 private:
  double lo_, hi_, width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace hcep
