// Deterministic, stream-splittable random number generation.
//
// The discrete-event simulator and the workload kernels both need
// reproducible randomness; std::mt19937 seeding is awkward to split across
// simulation entities, so we carry a xoshiro256** generator with a
// splitmix64 seeder and an efficient jump() for independent streams.
#pragma once

#include <array>
#include <cstdint>

namespace hcep {

/// splitmix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), plus distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL);

  /// Raw 64-bit output (UniformRandomBitGenerator interface).
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  std::uint64_t next();

  /// Advances 2^128 steps; use to derive independent parallel streams.
  void jump();

  /// Returns a generator jumped `n + 1` times past this one, leaving this
  /// generator untouched. Stream i and stream j != i never overlap.
  [[nodiscard]] Rng split(unsigned n = 0) const;

  /// Uniform in [0, 1).
  double uniform01();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n);
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);
  /// Standard normal via Box-Muller (cached pair).
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Gamma(shape, scale) via Marsaglia-Tsang (with the shape<1 boost).
  double gamma(double shape, double scale = 1.0);

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace hcep
