// Error handling primitives shared by every hcep module.
#pragma once

#include <stdexcept>
#include <string>

namespace hcep {

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised when a caller violates an API precondition.
class PreconditionError : public Error {
 public:
  using Error::Error;
};

/// Raised when a numerical routine fails to converge / produce a result.
class NumericalError : public Error {
 public:
  using Error::Error;
};

/// Throws PreconditionError with `what` when `ok` is false.
inline void require(bool ok, const std::string& what) {
  if (!ok) throw PreconditionError(what);
}

}  // namespace hcep
