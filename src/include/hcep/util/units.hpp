// Strong unit types for the time-energy domain.
//
// The paper's model mixes seconds, watts, joules, hertz and byte counts in
// almost every equation; strong types make the Table 2 / Table 3 algebra
// checkable by the compiler (J = W * s, s = cycles / Hz, ...).
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace hcep {

/// A dimension-tagged arithmetic wrapper around double.
///
/// Only same-dimension addition/subtraction and scalar scaling are defined
/// here; physically meaningful cross-dimension products (e.g. W * s -> J)
/// are provided as free functions below.
template <class Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Quantity& operator+=(Quantity o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    value_ -= o.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double k) {
    value_ *= k;
    return *this;
  }
  constexpr Quantity& operator/=(double k) {
    value_ /= k;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator-(Quantity a) { return Quantity{-a.value_}; }
  friend constexpr Quantity operator*(Quantity a, double k) {
    return Quantity{a.value_ * k};
  }
  friend constexpr Quantity operator*(double k, Quantity a) {
    return Quantity{k * a.value_};
  }
  friend constexpr Quantity operator/(Quantity a, double k) {
    return Quantity{a.value_ / k};
  }
  /// Ratio of two same-dimension quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

  friend std::ostream& operator<<(std::ostream& os, Quantity q) {
    return os << q.value_ << Tag::symbol();
  }

 private:
  double value_ = 0.0;
};

namespace unit_tags {
struct WattsTag {
  static constexpr const char* symbol() { return "W"; }
};
struct JoulesTag {
  static constexpr const char* symbol() { return "J"; }
};
struct SecondsTag {
  static constexpr const char* symbol() { return "s"; }
};
struct HertzTag {
  static constexpr const char* symbol() { return "Hz"; }
};
struct BytesTag {
  static constexpr const char* symbol() { return "B"; }
};
struct CyclesTag {
  static constexpr const char* symbol() { return "cyc"; }
};
}  // namespace unit_tags

using Watts = Quantity<unit_tags::WattsTag>;
using Joules = Quantity<unit_tags::JoulesTag>;
using Seconds = Quantity<unit_tags::SecondsTag>;
using Hertz = Quantity<unit_tags::HertzTag>;
using Bytes = Quantity<unit_tags::BytesTag>;
using Cycles = Quantity<unit_tags::CyclesTag>;

// --- Physically meaningful cross-dimension operations -----------------------

/// Energy accumulated by drawing power P for duration t.
[[nodiscard]] constexpr Joules operator*(Watts p, Seconds t) {
  return Joules{p.value() * t.value()};
}
[[nodiscard]] constexpr Joules operator*(Seconds t, Watts p) { return p * t; }

/// Average power over a window.
[[nodiscard]] constexpr Watts operator/(Joules e, Seconds t) {
  return Watts{e.value() / t.value()};
}
/// Time to burn energy e at power p.
[[nodiscard]] constexpr Seconds operator/(Joules e, Watts p) {
  return Seconds{e.value() / p.value()};
}

/// Execution time of a cycle count at a clock frequency (Table 2:
/// T_core = cycles_core / f).
[[nodiscard]] constexpr Seconds operator/(Cycles c, Hertz f) {
  return Seconds{c.value() / f.value()};
}
/// Cycles elapsed in a window at a clock frequency.
[[nodiscard]] constexpr Cycles operator*(Hertz f, Seconds t) {
  return Cycles{f.value() * t.value()};
}
[[nodiscard]] constexpr Cycles operator*(Seconds t, Hertz f) { return f * t; }

/// Transfer time for a byte count at a bandwidth expressed in bytes/second.
struct BytesPerSecond {
  double value = 0.0;
};
[[nodiscard]] constexpr Seconds operator/(Bytes b, BytesPerSecond bw) {
  return Seconds{b.value() / bw.value};
}

// --- Literals ----------------------------------------------------------------

namespace literals {
constexpr Watts operator""_W(long double v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_W(unsigned long long v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_kW(long double v) { return Watts{static_cast<double>(v) * 1e3}; }
constexpr Watts operator""_kW(unsigned long long v) { return Watts{static_cast<double>(v) * 1e3}; }
constexpr Joules operator""_J(long double v) { return Joules{static_cast<double>(v)}; }
constexpr Joules operator""_J(unsigned long long v) { return Joules{static_cast<double>(v)}; }
constexpr Seconds operator""_s(long double v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_s(unsigned long long v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_ms(long double v) { return Seconds{static_cast<double>(v) * 1e-3}; }
constexpr Seconds operator""_ms(unsigned long long v) { return Seconds{static_cast<double>(v) * 1e-3}; }
constexpr Seconds operator""_us(long double v) { return Seconds{static_cast<double>(v) * 1e-6}; }
constexpr Seconds operator""_us(unsigned long long v) { return Seconds{static_cast<double>(v) * 1e-6}; }
constexpr Hertz operator""_Hz(long double v) { return Hertz{static_cast<double>(v)}; }
constexpr Hertz operator""_Hz(unsigned long long v) { return Hertz{static_cast<double>(v)}; }
constexpr Hertz operator""_MHz(long double v) { return Hertz{static_cast<double>(v) * 1e6}; }
constexpr Hertz operator""_MHz(unsigned long long v) { return Hertz{static_cast<double>(v) * 1e6}; }
constexpr Hertz operator""_GHz(long double v) { return Hertz{static_cast<double>(v) * 1e9}; }
constexpr Hertz operator""_GHz(unsigned long long v) { return Hertz{static_cast<double>(v) * 1e9}; }
constexpr Bytes operator""_B(unsigned long long v) { return Bytes{static_cast<double>(v)}; }
constexpr Bytes operator""_KB(unsigned long long v) { return Bytes{static_cast<double>(v) * 1024.0}; }
constexpr Bytes operator""_MB(unsigned long long v) { return Bytes{static_cast<double>(v) * 1024.0 * 1024.0}; }
constexpr Bytes operator""_GB(unsigned long long v) { return Bytes{static_cast<double>(v) * 1024.0 * 1024.0 * 1024.0}; }
constexpr Cycles operator""_cyc(unsigned long long v) { return Cycles{static_cast<double>(v)}; }
}  // namespace literals

}  // namespace hcep
