// Compile-time dimensional analysis for the time-energy domain.
//
// Every headline number in the paper is a physical quantity — Joules,
// Watts, seconds, Hertz, cycles — and a J-vs-kWh or MHz-vs-GHz slip in a
// naked-double pipeline compiles silently and only shows up as a wrong
// Table 4/8 cell. Quantity<Dim, Ratio> makes that bug class
// unrepresentable: a dimension is a vector of integer exponents over the
// domain's base quantities (time, energy, cycles, bytes, work units), and
// arithmetic derives result dimensions automatically:
//
//   Watts * Seconds  -> Joules          (E T^-1 * T   = E)
//   Cycles / Hertz   -> Seconds         (C / (C T^-1) = T)
//   Joules / Seconds -> Watts
//   Bytes / BytesPerSecond -> Seconds
//   Joules / Ops     -> JoulesPerOp
//   Watts  / Watts   -> double          (dimensionless ratios decay)
//
// Wrong-dimension addition (J + W) or assignment (Watts -> Joules) is a
// compile error — see tests/compile_fail/. The Ratio parameter carries a
// compile-time scale against the coherent SI unit, so Millijoules,
// KilowattHours, Megahertz and Gigahertz are distinct types that convert
// exactly at the point of use instead of via remembered 1e-3/3.6e6/1e6
// factors.
//
// Zero overhead: a Quantity is a trivially copyable wrapper around one
// double (static_asserts below); at -O2 the generated code is identical
// to raw-double arithmetic (bench/perf_units.cpp guards this).
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>
#include <ratio>
#include <type_traits>

namespace hcep {

/// Dimension-exponent vector over the domain's base quantities.
/// Frequency is cycles-per-second (C T^-1), not bare T^-1, so the
/// Table 2 identity T_core = cycles / f type-checks.
template <int TimeE, int EnergyE, int CycleE, int ByteE, int OpE>
struct Dim {
  static constexpr int time = TimeE;
  static constexpr int energy = EnergyE;
  static constexpr int cycle = CycleE;
  static constexpr int byte = ByteE;
  static constexpr int op = OpE;
};

using DimLess = Dim<0, 0, 0, 0, 0>;
using TimeDim = Dim<1, 0, 0, 0, 0>;
using EnergyDim = Dim<0, 1, 0, 0, 0>;
using PowerDim = Dim<-1, 1, 0, 0, 0>;
using CycleDim = Dim<0, 0, 1, 0, 0>;
using FrequencyDim = Dim<-1, 0, 1, 0, 0>;
using ByteDim = Dim<0, 0, 0, 1, 0>;
using BandwidthDim = Dim<-1, 0, 0, 1, 0>;
using OpDim = Dim<0, 0, 0, 0, 1>;
using OpRateDim = Dim<-1, 0, 0, 0, 1>;
using EnergyPerOpDim = Dim<0, 1, 0, 0, -1>;
using EnergyTimeDim = Dim<1, 1, 0, 0, 0>;        ///< EDP (J*s)
using EnergyTimeSqDim = Dim<2, 1, 0, 0, 0>;      ///< ED2P (J*s^2)

template <class A, class B>
using DimMultiply = Dim<A::time + B::time, A::energy + B::energy,
                        A::cycle + B::cycle, A::byte + B::byte, A::op + B::op>;
template <class A, class B>
using DimDivide = Dim<A::time - B::time, A::energy - B::energy,
                      A::cycle - B::cycle, A::byte - B::byte, A::op - B::op>;

template <class D>
inline constexpr bool kDimensionless = std::is_same_v<D, DimLess>;

namespace detail {

/// Exact double value of a std::ratio (all unit ratios in use are exactly
/// representable: powers of ten up to 1e9, 1024^k, 3.6e6).
template <class R>
inline constexpr double kRatioValue =
    static_cast<double>(R::num) / static_cast<double>(R::den);

/// Conversion factor from a quantity in units of `From` to units of `To`.
template <class From, class To>
inline constexpr double kConversion = kRatioValue<std::ratio_divide<From, To>>;

/// Canonical symbol for the dimensions the codebase names; composed
/// fallback for anything else.
template <class D>
const char* dim_symbol() {
  if constexpr (std::is_same_v<D, TimeDim>) return "s";
  else if constexpr (std::is_same_v<D, EnergyDim>) return "J";
  else if constexpr (std::is_same_v<D, PowerDim>) return "W";
  else if constexpr (std::is_same_v<D, CycleDim>) return "cyc";
  else if constexpr (std::is_same_v<D, FrequencyDim>) return "Hz";
  else if constexpr (std::is_same_v<D, ByteDim>) return "B";
  else if constexpr (std::is_same_v<D, BandwidthDim>) return "B/s";
  else if constexpr (std::is_same_v<D, OpDim>) return "op";
  else if constexpr (std::is_same_v<D, OpRateDim>) return "op/s";
  else if constexpr (std::is_same_v<D, EnergyPerOpDim>) return "J/op";
  else if constexpr (std::is_same_v<D, EnergyTimeDim>) return "J.s";
  else if constexpr (std::is_same_v<D, EnergyTimeSqDim>) return "J.s^2";
  else return "?";
}

/// Metric prefix of a pure power-of-ten ratio ("" for ratio<1>); unit
/// symbols print as prefix + dimension symbol (e.g. "mJ", "MHz").
template <class R>
const char* ratio_prefix() {
  if constexpr (std::is_same_v<R, std::ratio<1>>) return "";
  else if constexpr (std::is_same_v<R, std::micro>) return "u";
  else if constexpr (std::is_same_v<R, std::milli>) return "m";
  else if constexpr (std::is_same_v<R, std::kilo>) return "k";
  else if constexpr (std::is_same_v<R, std::mega>) return "M";
  else if constexpr (std::is_same_v<R, std::giga>) return "G";
  else return "*";
}

}  // namespace detail

/// A dimension-tagged, compile-time-scaled wrapper around one double.
///
/// The stored value is in units of `Ratio` relative to the coherent SI
/// unit of `D` (Ratio = std::milli on EnergyDim stores millijoules).
/// Same-dimension quantities convert implicitly and exactly; mixed-ratio
/// arithmetic converts to the left operand's unit. Cross-dimension * and
/// / derive the result dimension and return it in coherent units;
/// dimensionless results decay to double.
template <class D, class R = std::ratio<1>>
class Quantity {
  static_assert(R::num > 0, "unit ratio must be positive");

 public:
  using dim = D;
  using ratio = R;

  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  /// Implicit exact conversion from the same dimension in another unit
  /// (Joules <- Millijoules, Hertz <- Gigahertz, ...).
  template <class R2>
    requires(!std::is_same_v<R, R2>)
  constexpr Quantity(Quantity<D, R2> o)
      : value_(o.value() * detail::kConversion<R2, R>) {}

  /// Numeric value in this quantity's own unit.
  [[nodiscard]] constexpr double value() const { return value_; }
  /// Numeric value in the coherent SI unit of the dimension.
  [[nodiscard]] constexpr double base_value() const {
    return value_ * detail::kRatioValue<R>;
  }

  constexpr Quantity& operator+=(Quantity o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    value_ -= o.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double k) {
    value_ *= k;
    return *this;
  }
  constexpr Quantity& operator/=(double k) {
    value_ /= k;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator-(Quantity a) {
    return Quantity{-a.value_};
  }
  friend constexpr Quantity operator*(Quantity a, double k) {
    return Quantity{a.value_ * k};
  }
  friend constexpr Quantity operator*(double k, Quantity a) {
    return Quantity{k * a.value_};
  }
  friend constexpr Quantity operator/(Quantity a, double k) {
    return Quantity{a.value_ / k};
  }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

  friend std::ostream& operator<<(std::ostream& os, Quantity q) {
    return os << q.value_ << detail::ratio_prefix<R>()
              << detail::dim_symbol<D>();
  }

 private:
  double value_ = 0.0;
};

/// Explicit same-dimension unit conversion (`quantity_cast<Millijoules>(j)`).
template <class To, class D, class R>
[[nodiscard]] constexpr To quantity_cast(Quantity<D, R> q) {
  static_assert(std::is_same_v<typename To::dim, D>,
                "quantity_cast cannot change dimensions");
  return To{q.value() * detail::kConversion<R, typename To::ratio>};
}

// --- Derived-dimension arithmetic -------------------------------------------
//
// One pair of operator templates replaces the hand-enumerated W*s, J/s,
// cyc/Hz, ... overloads of the tag-based layer: the compiler adds or
// subtracts the exponent vectors, so every physically meaningful product
// works and every meaningless one fails to find an overload.

template <class D1, class R1, class D2, class R2>
[[nodiscard]] constexpr auto operator*(Quantity<D1, R1> a, Quantity<D2, R2> b) {
  using D = DimMultiply<D1, D2>;
  const double v = a.base_value() * b.base_value();
  if constexpr (kDimensionless<D>) {
    return v;
  } else {
    return Quantity<D>{v};
  }
}

template <class D1, class R1, class D2, class R2>
[[nodiscard]] constexpr auto operator/(Quantity<D1, R1> a, Quantity<D2, R2> b) {
  using D = DimDivide<D1, D2>;
  const double v = a.base_value() / b.base_value();
  if constexpr (kDimensionless<D>) {
    return v;
  } else {
    return Quantity<D>{v};
  }
}

/// Reciprocal of a quantity (scalar / quantity).
template <class D, class R>
[[nodiscard]] constexpr auto operator/(double k, Quantity<D, R> q) {
  using Dinv = DimDivide<DimLess, D>;
  return Quantity<Dinv>{k / q.base_value()};
}

// Mixed-ratio, same-dimension arithmetic converts to the left operand's
// unit (Joules + Millijoules -> Joules).
template <class D, class R1, class R2>
  requires(!std::is_same_v<R1, R2>)
[[nodiscard]] constexpr Quantity<D, R1> operator+(Quantity<D, R1> a,
                                                  Quantity<D, R2> b) {
  return a + Quantity<D, R1>(b);
}
template <class D, class R1, class R2>
  requires(!std::is_same_v<R1, R2>)
[[nodiscard]] constexpr Quantity<D, R1> operator-(Quantity<D, R1> a,
                                                  Quantity<D, R2> b) {
  return a - Quantity<D, R1>(b);
}
template <class D, class R1, class R2>
  requires(!std::is_same_v<R1, R2>)
[[nodiscard]] constexpr auto operator<=>(Quantity<D, R1> a,
                                         Quantity<D, R2> b) {
  return a.base_value() <=> b.base_value();
}
template <class D, class R1, class R2>
  requires(!std::is_same_v<R1, R2>)
[[nodiscard]] constexpr bool operator==(Quantity<D, R1> a, Quantity<D, R2> b) {
  return a.base_value() == b.base_value();
}

// --- Coherent-unit aliases ---------------------------------------------------

using Seconds = Quantity<TimeDim>;
using Joules = Quantity<EnergyDim>;
using Watts = Quantity<PowerDim>;
using Cycles = Quantity<CycleDim>;
using Hertz = Quantity<FrequencyDim>;
using Bytes = Quantity<ByteDim>;
using BytesPerSecond = Quantity<BandwidthDim>;
using Ops = Quantity<OpDim>;
using OpsPerSecond = Quantity<OpRateDim>;
using JoulesPerOp = Quantity<EnergyPerOpDim>;
using JouleSeconds = Quantity<EnergyTimeDim>;
using JouleSecondsSquared = Quantity<EnergyTimeSqDim>;

// --- Scaled-unit aliases -----------------------------------------------------

using Microseconds = Quantity<TimeDim, std::micro>;
using Milliseconds = Quantity<TimeDim, std::milli>;
using Millijoules = Quantity<EnergyDim, std::milli>;
using Kilojoules = Quantity<EnergyDim, std::kilo>;
/// 1 kWh = 3.6e6 J exactly.
using KilowattHours = Quantity<EnergyDim, std::ratio<3600000>>;
using Milliwatts = Quantity<PowerDim, std::milli>;
using Kilowatts = Quantity<PowerDim, std::kilo>;
using Megahertz = Quantity<FrequencyDim, std::mega>;
using Gigahertz = Quantity<FrequencyDim, std::giga>;

// --- Zero-overhead guarantees -----------------------------------------------
//
// A Quantity must be a transparent double: same size, same alignment,
// trivially copyable, so arrays of typed metrics have raw-double layout
// and pass-by-value compiles to pass-in-register. bench/perf_units.cpp
// holds the codegen side of this contract.

static_assert(sizeof(Joules) == sizeof(double));
static_assert(sizeof(Watts) == sizeof(double));
static_assert(sizeof(Seconds) == sizeof(double));
static_assert(sizeof(Hertz) == sizeof(double));
static_assert(sizeof(KilowattHours) == sizeof(double));
static_assert(alignof(Joules) == alignof(double));
static_assert(std::is_trivially_copyable_v<Joules>);
static_assert(std::is_trivially_copyable_v<Watts>);
static_assert(std::is_trivially_copyable_v<Seconds>);
static_assert(std::is_trivially_destructible_v<Joules>);

// --- Compile-time algebra spot checks ---------------------------------------

static_assert(std::is_same_v<decltype(Watts{} * Seconds{}), Joules>);
static_assert(std::is_same_v<decltype(Seconds{} * Watts{}), Joules>);
static_assert(std::is_same_v<decltype(Joules{} / Seconds{}), Watts>);
static_assert(std::is_same_v<decltype(Joules{} / Watts{}), Seconds>);
static_assert(std::is_same_v<decltype(Cycles{} / Hertz{}), Seconds>);
static_assert(std::is_same_v<decltype(Hertz{} * Seconds{}), Cycles>);
static_assert(std::is_same_v<decltype(Bytes{} / BytesPerSecond{}), Seconds>);
static_assert(std::is_same_v<decltype(Joules{} / Ops{}), JoulesPerOp>);
static_assert(std::is_same_v<decltype(Joules{} * Seconds{}), JouleSeconds>);
static_assert(std::is_same_v<decltype(Watts{} / Watts{}), double>);
static_assert(std::is_same_v<decltype(Hertz{} / Hertz{}), double>);

// --- Literals ----------------------------------------------------------------
//
// Literals yield coherent-unit quantities (value() in SI), matching the
// pre-Ratio behaviour: (800_MHz).value() == 0.8e9. Use the scaled alias
// types when the stored representation itself should be scaled.

namespace literals {
constexpr Watts operator""_W(long double v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_W(unsigned long long v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_mW(long double v) { return Watts{static_cast<double>(v) * 1e-3}; }
constexpr Watts operator""_mW(unsigned long long v) { return Watts{static_cast<double>(v) * 1e-3}; }
constexpr Watts operator""_kW(long double v) { return Watts{static_cast<double>(v) * 1e3}; }
constexpr Watts operator""_kW(unsigned long long v) { return Watts{static_cast<double>(v) * 1e3}; }
constexpr Joules operator""_J(long double v) { return Joules{static_cast<double>(v)}; }
constexpr Joules operator""_J(unsigned long long v) { return Joules{static_cast<double>(v)}; }
constexpr Joules operator""_mJ(long double v) { return Joules{static_cast<double>(v) * 1e-3}; }
constexpr Joules operator""_mJ(unsigned long long v) { return Joules{static_cast<double>(v) * 1e-3}; }
constexpr Joules operator""_kWh(long double v) { return Joules{static_cast<double>(v) * 3.6e6}; }
constexpr Joules operator""_kWh(unsigned long long v) { return Joules{static_cast<double>(v) * 3.6e6}; }
constexpr Seconds operator""_s(long double v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_s(unsigned long long v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_ms(long double v) { return Seconds{static_cast<double>(v) * 1e-3}; }
constexpr Seconds operator""_ms(unsigned long long v) { return Seconds{static_cast<double>(v) * 1e-3}; }
constexpr Seconds operator""_us(long double v) { return Seconds{static_cast<double>(v) * 1e-6}; }
constexpr Seconds operator""_us(unsigned long long v) { return Seconds{static_cast<double>(v) * 1e-6}; }
constexpr Hertz operator""_Hz(long double v) { return Hertz{static_cast<double>(v)}; }
constexpr Hertz operator""_Hz(unsigned long long v) { return Hertz{static_cast<double>(v)}; }
constexpr Hertz operator""_MHz(long double v) { return Hertz{static_cast<double>(v) * 1e6}; }
constexpr Hertz operator""_MHz(unsigned long long v) { return Hertz{static_cast<double>(v) * 1e6}; }
constexpr Hertz operator""_GHz(long double v) { return Hertz{static_cast<double>(v) * 1e9}; }
constexpr Hertz operator""_GHz(unsigned long long v) { return Hertz{static_cast<double>(v) * 1e9}; }
constexpr Bytes operator""_B(unsigned long long v) { return Bytes{static_cast<double>(v)}; }
constexpr Bytes operator""_KB(unsigned long long v) { return Bytes{static_cast<double>(v) * 1024.0}; }
constexpr Bytes operator""_MB(unsigned long long v) { return Bytes{static_cast<double>(v) * 1024.0 * 1024.0}; }
constexpr Bytes operator""_GB(unsigned long long v) { return Bytes{static_cast<double>(v) * 1024.0 * 1024.0 * 1024.0}; }
constexpr Cycles operator""_cyc(unsigned long long v) { return Cycles{static_cast<double>(v)}; }
constexpr Ops operator""_op(unsigned long long v) { return Ops{static_cast<double>(v)}; }
}  // namespace literals

}  // namespace hcep
